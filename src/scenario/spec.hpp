// Unified scenario API: one declarative spec for every experiment driver.
//
// A ScenarioSpec describes a complete workload — population, device count,
// payload, campaign configuration, runs/seed/threads, the mechanism list
// and (optionally) a multicell topology + assignment policy — and
// run_scenario (scenario/run.hpp) dispatches it to the single-cell
// comparison engine or the multicell deployment engine.  The spec is
// builder-style (chained with_* setters), validated, and serializable
// to/from the simple `key = value` scenario-file format (scenario/
// parser.hpp); named presets live in scenario::Registry.
//
// The pre-redesign front doors — core::ComparisonSetup/run_comparison and
// multicell::DeploymentSetup/run_deployment — remain as the engine layer
// the scenario layer drives; the conversion functions below are the single
// adapters between the two, and tests/scenario/ pins that they round-trip
// and that run_scenario aggregates are bit-identical to the engines called
// directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "faults/spec.hpp"
#include "multicell/coordinator.hpp"
#include "multicell/deployment.hpp"

namespace nbmg::scenario {

/// Declarative multicell grid: how many cells and how load skews across
/// them.  `realize()` builds the multicell::CellTopology the deployment
/// engine consumes; a topology injected by from_setup (which may carry
/// per-cell weights/capacity overrides no file key can express) is kept
/// verbatim in `custom` and wins.
struct TopologySpec {
    enum class Kind : std::uint8_t { uniform, hotspot };

    std::size_t cells = 1;
    Kind kind = Kind::uniform;
    /// Zipf exponent of the hotspot gradient (CellTopology::hotspot).
    double hotspot_exponent = 1.0;
    /// Adapter-injected exact topology; overrides the declarative fields.
    std::optional<multicell::CellTopology> custom;

    [[nodiscard]] multicell::CellTopology realize() const;
    /// True when the declarative fields fully describe the topology (no
    /// custom grid), i.e. it survives a scenario-file round trip.
    [[nodiscard]] bool file_expressible() const noexcept { return !custom.has_value(); }
};

[[nodiscard]] constexpr const char* to_string(TopologySpec::Kind kind) noexcept {
    switch (kind) {
        case TopologySpec::Kind::uniform: return "uniform";
        case TopologySpec::Kind::hotspot: return "hotspot";
    }
    return "?";
}

/// Declarative telemetry request: which sinks to collect (typed trace
/// records and/or the counter/metrics registry) and where run_scenario
/// writes the exported artifacts.  Telemetry is purely observational —
/// attaching it changes no aggregate and no RNG draw, and every artifact
/// is bit-identical for any --threads (tests/telemetry/ pins this).
struct TelemetrySpec {
    /// Collect typed trace records (enables the JSONL trace and the
    /// Chrome trace_event timeline exports).
    bool trace = false;
    /// Collect the counter registry + sim-time-bucketed series (enables
    /// the metrics CSV export).
    bool metrics = false;
    /// Bucket width of the sim-time series (ms, >= 1).
    std::int64_t bucket_ms = 60'000;
    /// Output paths ("" = do not write the artifact).  trace_out and
    /// timeline_out require `trace`; metrics_out requires `metrics`
    /// (validate() enforces the pairing; the with_*_out builders engage
    /// the mode automatically).
    std::string trace_out;
    std::string metrics_out;
    std::string timeline_out;

    [[nodiscard]] bool enabled() const noexcept { return trace || metrics; }
    bool operator==(const TelemetrySpec&) const = default;
};

/// Declarative checkpoint/resume request (snapshot/checkpoint.hpp).
/// Checkpointing works at (run, cell) task granularity: the snapshot
/// records the serialized outcome of every completed grid task, and a
/// resumed run restores those outcomes and re-executes only the rest —
/// bit-identical to the uninterrupted run at any --threads.  Attaching a
/// checkpoint changes no aggregate and no RNG draw.
struct CheckpointSpec {
    /// Snapshot path ("" = never write snapshots).
    std::string out;
    /// Simulated-time write throttle: rewrite the snapshot once at least
    /// this many simulated ms of tasks completed since the last write;
    /// 0 = rewrite after every completed task.  Requires `out`.
    std::int64_t every_ms = 0;
    /// Stop with exit status 3 after this many freshly computed tasks
    /// (restored tasks do not count); 0 = run to completion.  A
    /// deterministic, wall-clock-free stop for tests and time-sharded
    /// drivers.  Requires `out`.
    std::uint64_t stop_after = 0;
    /// Snapshot to resume from ("" = fresh run).  The snapshot must have
    /// been taken by the same scenario (results-affecting keys match;
    /// threads and output paths may differ) — anything else is rejected
    /// with a diagnostic.
    std::string resume;

    [[nodiscard]] bool enabled() const noexcept {
        return !out.empty() || !resume.empty();
    }
    bool operator==(const CheckpointSpec&) const = default;
};

/// The one declarative description every driver (bench shells, examples,
/// tests, CI smokes) builds its workload from.
struct ScenarioSpec {
    /// Display/preset name; purely informational.
    std::string name = "custom";
    std::string description;

    traffic::PopulationProfile profile;
    std::size_t device_count = 500;
    std::int64_t payload_bytes = 100 * 1024;
    core::CampaignConfig config{};
    std::size_t runs = 100;
    std::uint64_t base_seed = 42;
    /// Worker threads for the sweep fan-out; 0 = one per hardware thread.
    /// Results never depend on this value.
    std::size_t threads = 0;
    std::vector<core::MechanismKind> mechanisms{core::MechanismKind::dr_sc,
                                                core::MechanismKind::da_sc,
                                                core::MechanismKind::dr_si};
    /// Engaged => run_scenario dispatches to the multicell deployment
    /// engine; absent => the single-cell comparison engine.
    std::optional<TopologySpec> topology;
    multicell::AssignmentPolicy assignment = multicell::AssignmentPolicy::uniform_hash;
    /// Engaged (requires a topology) => the deployment additionally runs
    /// through the city-wide wall-clock coordinator
    /// (multicell::run_coordinated): per-cell start offsets by the chosen
    /// policy plus fleet time-axis aggregates.  The campaign aggregates
    /// stay bit-identical to the coordinator-absent path for every policy.
    std::optional<multicell::CoordinatorSpec> coordinator;
    /// Engaged (requires a topology; cell < cells) => that cell goes dark
    /// at the given simulated time in every run; stranded devices are
    /// deterministically re-assigned to the surviving cells (see
    /// multicell::DeploymentSetup::cell_down).  Churn and backhaul loss
    /// live on `config.churn` and `coordinator->loss_prob` respectively.
    std::optional<faults::OutageSpec> cell_down;
    /// Optional precomputed per-run populations (see
    /// core::generate_comparison_populations); shared across sweep points
    /// by the shells.  Never serialized.
    core::SharedPopulations populations;
    /// Telemetry request (disabled by default; see TelemetrySpec).
    TelemetrySpec telemetry;
    /// Checkpoint/resume request (disabled by default; see CheckpointSpec).
    CheckpointSpec checkpoint;

    ScenarioSpec();

    // --- builder-style setters (each returns *this for chaining) ---
    ScenarioSpec& with_name(std::string value);
    ScenarioSpec& with_description(std::string value);
    ScenarioSpec& with_profile(traffic::PopulationProfile value);
    ScenarioSpec& with_devices(std::size_t value);
    ScenarioSpec& with_payload_bytes(std::int64_t value);
    ScenarioSpec& with_runs(std::size_t value);
    ScenarioSpec& with_seed(std::uint64_t value);
    ScenarioSpec& with_threads(std::size_t value);
    ScenarioSpec& with_mechanisms(std::vector<core::MechanismKind> value);
    ScenarioSpec& with_config(core::CampaignConfig value);
    ScenarioSpec& with_inactivity_timer_ms(std::int64_t value);
    /// Requested paging-frame stratum count (CampaignConfig::strata);
    /// non-powers-of-two round down at run time (core::resolve_strata).
    ScenarioSpec& with_strata(std::size_t value);
    /// Engages the multicell engine on a uniform grid of `cells` cells
    /// (any previous topology — kind, exponent, custom grid — is replaced).
    ScenarioSpec& with_cells(std::size_t cells);
    /// Changes only the grid's cell count, preserving the declarative
    /// topology kind and exponent (a custom grid, whose per-cell data is
    /// count-specific, is dropped).  Engages a uniform grid when the spec
    /// was single-cell.  This is what the --cells override uses.
    ScenarioSpec& with_cell_count(std::size_t cells);
    ScenarioSpec& with_topology(TopologySpec value);
    /// Engages the multicell engine on a Zipf-skewed hotspot grid.
    ScenarioSpec& with_hotspot(std::size_t cells, double exponent);
    ScenarioSpec& with_assignment(multicell::AssignmentPolicy value);
    ScenarioSpec& with_populations(core::SharedPopulations value);
    /// Engages the wall-clock coordinator with an explicit spec.
    ScenarioSpec& with_coordinator(multicell::CoordinatorSpec value);
    /// Coordinator with fixed per-cell start stagger (policy fixed-stagger).
    ScenarioSpec& with_stagger_ms(std::int64_t value);
    /// Coordinator with a finite central-feed budget (policy backhaul).
    ScenarioSpec& with_backhaul_kbps(double value);
    /// Per-chunk packet-loss probability on the backhaul feed (in [0, 1)).
    /// Throws std::invalid_argument unless a backhaul coordinator is
    /// already engaged (call with_backhaul_kbps first).
    ScenarioSpec& with_backhaul_loss(double value);
    /// Clears the coordinator: back to uncoordinated run_deployment.
    ScenarioSpec& without_coordinator();
    /// Device churn: seeded leave/rejoin point processes per device
    /// (faults::ChurnSpec; leave_rate in departures per device-hour,
    /// rejoin_ms of off-air time).  leave_rate = 0 disables churn.
    ScenarioSpec& with_churn(double leave_rate, std::int64_t rejoin_ms);
    /// Mid-campaign cell outage (requires a multicell topology).
    ScenarioSpec& with_cell_down(faults::OutageSpec value);
    /// Replaces the whole telemetry request.
    ScenarioSpec& with_telemetry(TelemetrySpec value);
    /// Enables trace and/or metrics collection without output files (the
    /// in-memory report alone).
    ScenarioSpec& with_telemetry_modes(bool trace, bool metrics);
    /// Requests the JSONL trace at `path` (implies trace collection).
    ScenarioSpec& with_trace_out(std::string path);
    /// Requests the metrics CSV at `path` (implies metrics collection).
    ScenarioSpec& with_metrics_out(std::string path);
    /// Requests the Chrome trace_event timeline at `path` (implies trace
    /// collection).
    ScenarioSpec& with_timeline_out(std::string path);
    /// Bucket width of the metrics sim-time series (ms, >= 1).
    ScenarioSpec& with_telemetry_bucket_ms(std::int64_t value);
    /// Requests snapshots at `path` (see CheckpointSpec::out).
    ScenarioSpec& with_checkpoint_out(std::string path);
    /// Simulated-ms snapshot write throttle (see CheckpointSpec::every_ms).
    ScenarioSpec& with_checkpoint_every_ms(std::int64_t value);
    /// Deterministic mid-flight stop budget (see CheckpointSpec::stop_after).
    ScenarioSpec& with_checkpoint_stop_after(std::uint64_t value);
    /// Resumes from the snapshot at `path` (see CheckpointSpec::resume).
    ScenarioSpec& with_resume(std::string path);
    /// Clears the topology (and any coordinator riding on it): back to the
    /// single-cell comparison engine.
    ScenarioSpec& single_cell();

    [[nodiscard]] bool is_multicell() const noexcept { return topology.has_value(); }
    [[nodiscard]] bool is_coordinated() const noexcept { return coordinator.has_value(); }
    [[nodiscard]] std::size_t cell_count() const noexcept {
        return topology ? topology->cells : 1;
    }

    /// Throws std::invalid_argument (message names the offending field) when
    /// the spec cannot run.
    void validate() const;

    /// Serializes the declarative subset to the scenario-file format, one
    /// `key = value` per line (parse_scenario_text inverts it).  Throws
    /// std::invalid_argument for specs the format cannot express: a profile
    /// that is not a registered builtin, or an adapter-injected custom
    /// topology.
    [[nodiscard]] std::string to_file_text() const;
};

// --- adapters over the pre-redesign setups -------------------------------
//
// core::ComparisonSetup and multicell::DeploymentSetup are deprecated as
// front doors but kept as the engine-level structs; these four functions
// are the only conversions, and round-tripping through them is pinned by
// tests/scenario/spec_test.cpp.

[[nodiscard]] ScenarioSpec from_setup(const core::ComparisonSetup& setup);
[[nodiscard]] ScenarioSpec from_setup(const multicell::DeploymentSetup& setup);

/// Throws std::invalid_argument when the spec is multicell (the single-cell
/// engine cannot honor a topology).
[[nodiscard]] core::ComparisonSetup to_comparison_setup(const ScenarioSpec& spec);

/// A single-cell spec maps to a 1-cell uniform deployment (which the
/// determinism contract makes bit-identical to run_comparison).
[[nodiscard]] multicell::DeploymentSetup to_deployment_setup(const ScenarioSpec& spec);

}  // namespace nbmg::scenario
