// The single entry point of the scenario API: run_scenario(spec) validates
// the spec, dispatches to the single-cell comparison engine or the
// multicell deployment engine, and returns a unified ScenarioResult.
//
// Determinism: the dispatch is a pure re-plumbing of the pre-redesign
// drivers — a single-cell spec reaches core::run_comparison and a
// multicell spec reaches multicell::run_deployment with field-for-field
// identical setups, so aggregates are bit-identical to calling the engines
// directly, at any --threads (tests/scenario/scenario_golden_test.cpp).
#pragma once

#include <variant>

#include "scenario/spec.hpp"
#include "stats/table.hpp"

namespace nbmg::scenario {

/// The telemetry artifacts of one scenario run (present on ScenarioResult
/// when the spec enabled telemetry).  Every artifact is a deterministic
/// function of (spec, seed): byte-identical at any --threads, and the
/// campaign aggregates are bit-identical to the telemetry-off run.
struct TelemetryReport {
    /// The request that produced this report.
    TelemetrySpec config;
    /// Typed trace as JSONL, one record per line in deterministic
    /// (run, cell, campaign, emission) order ("" when trace was off).
    std::string trace_jsonl;
    /// Counter registry + sim-time-bucketed series (absent when metrics
    /// collection was off); metrics_out writes its to_csv().
    std::optional<stats::Table> metrics;
    /// Chrome trace_event phase timeline — per-cell campaign spans,
    /// per-stratum sub-spans, backhaul feed busy intervals — loadable in
    /// chrome://tracing / Perfetto ("" when trace was off).
    std::string timeline_json;
};

/// Tagged union of the two engines' results with a common report surface.
struct ScenarioResult {
    ScenarioSpec spec;
    std::variant<core::ComparisonOutcome, multicell::DeploymentResult> outcome;
    /// Present when the spec engaged the wall-clock coordinator: the fleet
    /// time-axis aggregates (city-wide completion, peak concurrent cells,
    /// backhaul utilization).  The campaign aggregates in `outcome` are
    /// bit-identical to the coordinator-absent run.
    std::optional<multicell::CoordinationAggregates> coordination;
    /// Present when the spec enabled telemetry (TelemetrySpec::enabled).
    std::optional<TelemetryReport> telemetry;

    [[nodiscard]] bool is_multicell() const noexcept {
        return std::holds_alternative<multicell::DeploymentResult>(outcome);
    }
    [[nodiscard]] bool is_coordinated() const noexcept {
        return coordination.has_value();
    }
    /// Engine-specific views; throw std::bad_variant_access on the wrong tag.
    [[nodiscard]] const core::ComparisonOutcome& comparison() const {
        return std::get<core::ComparisonOutcome>(outcome);
    }
    [[nodiscard]] const multicell::DeploymentResult& deployment() const {
        return std::get<multicell::DeploymentResult>(outcome);
    }

    // --- common surface (works for both engines) ---
    /// Per-run aggregate stats of the unicast reference.
    [[nodiscard]] const core::MechanismStats& unicast_stats() const noexcept;
    /// Aggregates of spec.mechanisms[index] (same order).
    [[nodiscard]] const core::MechanismStats& mechanism_stats(
        std::size_t index) const;
    [[nodiscard]] std::size_t mechanism_count() const noexcept;

    /// The paper's headline aggregates, one row per mechanism
    /// (core::mechanism_summary_table); summary_csv() is its CSV rendering.
    [[nodiscard]] stats::Table summary_table() const;
    [[nodiscard]] std::string summary_csv() const;

    /// Time-axis report of a coordinated scenario: one row per metric
    /// (city completion, start spread, peak concurrent cells, backhaul
    /// busy/utilization) with mean/min/max across runs.  Throws
    /// std::logic_error when no coordinator ran.
    [[nodiscard]] stats::Table coordination_table() const;
    [[nodiscard]] std::string coordination_csv() const;
};

/// Validates and runs `spec`.  Throws std::invalid_argument on an invalid
/// spec (see ScenarioSpec::validate) and ScenarioError (scenario/parser.hpp)
/// when a telemetry output file cannot be written.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Shell-friendly wrapper: run_scenario, but an invalid spec or an
/// unwritable telemetry output exits with a diagnostic and status 2 (the
/// CLI layer's usage-error status) instead of throwing.  Every bench and
/// example shell that accepts --trace-out/--metrics-out/--timeline-out
/// goes through this, and tests/scenario/ pins the death behaviour.
[[nodiscard]] ScenarioResult run_scenario_or_exit(const ScenarioSpec& spec);

}  // namespace nbmg::scenario
