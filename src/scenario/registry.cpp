#include "scenario/registry.hpp"

#include <stdexcept>
#include <utility>

#include "traffic/firmware.hpp"

namespace nbmg::scenario {
namespace {

[[noreturn]] void throw_unknown(const char* what, std::string_view name,
                                const std::vector<std::string>& available) {
    std::string message = std::string("unknown ") + what + " '" +
                          std::string(name) + "'; available: ";
    for (std::size_t i = 0; i < available.size(); ++i) {
        if (i != 0) message += ", ";
        message += available[i];
    }
    throw std::invalid_argument(message);
}

using core::MechanismKind;

/// One preset per shipped bench/example workload, frozen at the defaults
/// the pre-redesign binaries hand-assembled (the golden equivalence tests
/// in tests/scenario/ compare against exactly these).
void register_builtin_presets(Registry& registry) {
    registry.register_preset(
        "fig6a", "Fig. 6(a): relative light-sleep uptime increase vs unicast",
        ScenarioSpec{}.with_name("fig6a").with_devices(300).with_runs(50));

    registry.register_preset(
        "fig6b",
        "Fig. 6(b): relative connected-mode uptime increase (payload sweep base)",
        ScenarioSpec{}.with_name("fig6b").with_devices(300).with_runs(30));

    registry.register_preset(
        "fig7", "Fig. 7: DR-SC multicast transmissions vs device count",
        ScenarioSpec{}.with_name("fig7").with_devices(1000).with_runs(100).with_mechanisms(
            {MechanismKind::dr_sc}));

    registry.register_preset(
        "ablation-setcover",
        "A1: greedy vs first-fit/random/exact on DR-SC window instances",
        ScenarioSpec{}.with_name("ablation-setcover").with_devices(24).with_runs(40).with_mechanisms(
            {MechanismKind::dr_sc}));

    registry.register_preset(
        "ablation-ti", "A2: inactivity-timer (TI) sweep base point",
        ScenarioSpec{}.with_name("ablation-ti").with_devices(300).with_runs(20));

    registry.register_preset(
        "ablation-drx-mix", "A3: DRX-mix sensitivity of DR-SC transmissions",
        ScenarioSpec{}.with_name("ablation-drx-mix").with_devices(500).with_runs(30).with_mechanisms(
            {MechanismKind::dr_sc}));

    registry.register_preset(
        "ablation-contention",
        "A4: paging capacity, RACH load and page-loss stress (DR-SI)",
        ScenarioSpec{}.with_name("ablation-contention").with_devices(400).with_runs(10).with_mechanisms(
            {MechanismKind::dr_si}));

    registry.register_preset(
        "ablation-scptm", "A5: SC-PTM standing-cost baseline vs on-demand",
        ScenarioSpec{}
            .with_name("ablation-scptm")
            .with_devices(200)
            .with_runs(15)
            .with_mechanisms({MechanismKind::dr_sc, MechanismKind::da_sc,
                              MechanismKind::dr_si, MechanismKind::sc_ptm}));

    registry.register_preset(
        "ablation-battery", "A6: battery-life projection per mechanism",
        ScenarioSpec{}
            .with_name("ablation-battery")
            .with_devices(150)
            .with_runs(1)
            .with_payload_bytes(traffic::firmware_1mb().bytes)
            .with_mechanisms({MechanismKind::dr_sc, MechanismKind::da_sc,
                              MechanismKind::dr_si, MechanismKind::sc_ptm}));

    registry.register_preset(
        "smoke", "40-device CI smoke of all three mechanisms",
        ScenarioSpec{}
            .with_name("smoke")
            .with_devices(40)
            .with_payload_bytes(100 * 1024)
            .with_runs(2)
            .with_seed(42)
            .with_inactivity_timer_ms(10'000));

    registry.register_preset(
        "quickstart", "one small campaign per mechanism, narrated",
        ScenarioSpec{}.with_name("quickstart").with_devices(200).with_runs(1).with_seed(1));

    registry.register_preset(
        "firmware-campaign", "DA-SC firmware rollout for a metering fleet",
        ScenarioSpec{}
            .with_name("firmware-campaign")
            .with_devices(2'000)
            .with_runs(1)
            .with_seed(7)
            .with_payload_bytes(traffic::firmware_1mb().bytes)
            .with_mechanisms({MechanismKind::da_sc}));

    registry.register_preset(
        "mechanism-tradeoffs", "payload x TI recommendation sweep base point",
        ScenarioSpec{}.with_name("mechanism-tradeoffs").with_devices(200).with_runs(5));

    registry.register_preset(
        "citywide", "one fleet campaign sharded over a 16-cell city grid",
        ScenarioSpec{}.with_name("citywide").with_devices(6'000).with_runs(2).with_cells(16));

    registry.register_preset(
        "citywide-staggered",
        "citywide fleet with 30 s staggered per-cell campaign starts",
        ScenarioSpec{}
            .with_name("citywide-staggered")
            .with_devices(6'000)
            .with_runs(2)
            .with_cells(16)
            .with_stagger_ms(30'000));

    registry.register_preset(
        "citywide-backhaul",
        "citywide 1 MB rollout gated by a 512 KB/s central eNB feed",
        ScenarioSpec{}
            .with_name("citywide-backhaul")
            .with_devices(6'000)
            .with_runs(2)
            .with_cells(16)
            .with_payload_bytes(traffic::firmware_1mb().bytes)
            .with_backhaul_kbps(512.0));

    registry.register_preset(
        "megacell",
        "one 10^6-device cell split into 8 paging-frame strata (DR-SI)",
        ScenarioSpec{}
            .with_name("megacell")
            .with_devices(1'000'000)
            .with_runs(1)
            .with_strata(8)
            .with_mechanisms({MechanismKind::dr_si}));

    registry.register_preset(
        "churn",
        "single-cell campaign under device churn (leave/rejoin point "
        "processes)",
        ScenarioSpec{}
            .with_name("churn")
            .with_devices(300)
            .with_runs(5)
            .with_churn(2.0, 120'000));

    registry.register_preset(
        "outage",
        "4-cell rollout with cell 1 dying mid-campaign; stranded devices "
        "self-heal onto the survivors",
        ScenarioSpec{}
            .with_name("outage")
            .with_devices(2'000)
            .with_runs(3)
            .with_cells(4)
            .with_cell_down(faults::OutageSpec{1, 60'000}));

    registry.register_preset(
        "multicell-scaling",
        "fixed fleet sharded over up to 64 cells (scaling sweep base)",
        ScenarioSpec{}
            .with_name("multicell-scaling")
            .with_devices(20'000)
            .with_runs(2)
            .with_cells(64)
            .with_mechanisms({MechanismKind::dr_sc}));
}

}  // namespace

Registry::Registry() {
    mechanisms_ = {
        {"dr-sc", MechanismKind::dr_sc,
         "DRX respecting, standards compliant (greedy window cover)"},
        {"da-sc", MechanismKind::da_sc,
         "DRX adjusting, standards compliant (single transmission)"},
        {"dr-si", MechanismKind::dr_si,
         "DRX respecting, standards incompliant (paging extension)"},
        {"unicast", MechanismKind::unicast,
         "per-device delivery; the paper's energy reference"},
        {"sc-ptm", MechanismKind::sc_ptm,
         "SC-PTM-style periodic monitoring (extension baseline)"},
    };
    profiles_ = traffic::builtin_profiles();
    register_builtin_presets(*this);
}

Registry& Registry::instance() {
    static Registry registry;
    return registry;
}

void Registry::register_mechanism(MechanismEntry entry) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const MechanismEntry& existing : mechanisms_) {
        if (existing.name == entry.name) {
            throw std::invalid_argument("mechanism '" + entry.name +
                                        "' is already registered");
        }
    }
    mechanisms_.push_back(std::move(entry));
}

core::MechanismKind Registry::mechanism(std::string_view name) const {
    if (const auto kind = find_mechanism(name)) return *kind;
    throw_unknown("mechanism", name, mechanism_names());
}

std::optional<core::MechanismKind> Registry::find_mechanism(
    std::string_view name) const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const MechanismEntry& entry : mechanisms_) {
        if (entry.name == name) return entry.kind;
    }
    return std::nullopt;
}

std::string Registry::mechanism_name(core::MechanismKind kind) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const MechanismEntry& entry : mechanisms_) {
        if (entry.kind == kind) return entry.name;
    }
    return core::to_string(kind);
}

std::vector<std::string> Registry::mechanism_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(mechanisms_.size());
    for (const MechanismEntry& entry : mechanisms_) names.push_back(entry.name);
    return names;
}

void Registry::register_profile(traffic::PopulationProfile profile) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const traffic::PopulationProfile& existing : profiles_) {
        if (existing.name == profile.name) {
            throw std::invalid_argument("profile '" + profile.name +
                                        "' is already registered");
        }
    }
    profiles_.push_back(std::move(profile));
}

traffic::PopulationProfile Registry::profile(std::string_view name) const {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const traffic::PopulationProfile& entry : profiles_) {
            if (entry.name == name) return entry;
        }
    }
    throw_unknown("profile", name, profile_names());
}

bool Registry::has_profile(std::string_view name) const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const traffic::PopulationProfile& entry : profiles_) {
        if (entry.name == name) return true;
    }
    return false;
}

std::vector<std::string> Registry::profile_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(profiles_.size());
    for (const traffic::PopulationProfile& entry : profiles_) {
        names.push_back(entry.name);
    }
    return names;
}

void Registry::register_preset(std::string name, std::string description,
                               ScenarioSpec spec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const PresetEntry& existing : presets_) {
        if (existing.name == name) {
            throw std::invalid_argument("preset '" + name +
                                        "' is already registered");
        }
    }
    presets_.push_back(
        PresetEntry{std::move(name), std::move(description), std::move(spec)});
}

ScenarioSpec Registry::preset(std::string_view name) const {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const PresetEntry& entry : presets_) {
            if (entry.name == name) return entry.spec;
        }
    }
    throw_unknown("preset", name, preset_names());
}

bool Registry::has_preset(std::string_view name) const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const PresetEntry& entry : presets_) {
        if (entry.name == name) return true;
    }
    return false;
}

std::vector<std::string> Registry::preset_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(presets_.size());
    for (const PresetEntry& entry : presets_) names.push_back(entry.name);
    return names;
}

std::vector<Registry::PresetEntry> Registry::presets() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return presets_;
}

}  // namespace nbmg::scenario
