// Scenario-file parser: the `key = value` format ScenarioSpec serializes
// to.  Parsing is strict — an unknown key, a duplicate key, or a value of
// the wrong type all throw a ScenarioError naming the offending
// source:line, so a typo in a checked-in scenario file fails loudly
// instead of silently running a different experiment.
//
// Grammar, one statement per line:
//   key = value        # trailing comments are not supported; a '#' in
//   # full-line comment  column one (after whitespace) skips the line
// Keys: name, description, profile, batch_mean, devices, payload_bytes,
// payload_kb, runs, seed, threads, mechanisms (comma list of registry
// spellings), ti_ms, ra_guard_ms, include_inactivity_tail, page_miss_prob,
// max_page_attempts, background_ra_per_second, max_page_records,
// sc_ptm_mcch_period_ms, cells, topology (uniform | hotspot),
// hotspot_exponent, assignment (uniform | hotspot | class-affinity),
// telemetry (off | trace | metrics | full), telemetry.bucket_ms,
// trace_out, metrics_out, timeline_out, checkpoint.out,
// checkpoint.every_ms, checkpoint.stop_after, checkpoint.resume.
// The multicell keys (topology, hotspot_exponent, assignment) require
// `cells`; `cells` alone engages the multicell engine on a uniform grid.
// The telemetry output keys require the matching collection mode:
// trace_out/timeline_out need telemetry = trace or full, metrics_out
// needs telemetry = metrics or full, telemetry.bucket_ms needs any
// enabled mode.  The checkpoint sub-keys checkpoint.every_ms and
// checkpoint.stop_after require a snapshot path (checkpoint.out).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "scenario/spec.hpp"

namespace nbmg::scenario {

/// Parse/IO failure; what() carries "source:line: reason".
class ScenarioError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Parses scenario-file text.  `source_name` labels error messages (use the
/// file path).  Throws ScenarioError on malformed input and validates the
/// resulting spec.
[[nodiscard]] ScenarioSpec parse_scenario_text(std::string_view text,
                                               std::string_view source_name =
                                                   "<scenario>");

/// Reads and parses `path`.  Throws ScenarioError when the file cannot be
/// read or does not parse.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace nbmg::scenario
