#include "scenario/spec.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/registry.hpp"

namespace nbmg::scenario {

multicell::CellTopology TopologySpec::realize() const {
    if (custom) return *custom;
    switch (kind) {
        case Kind::uniform: return multicell::CellTopology::uniform(cells);
        case Kind::hotspot:
            return multicell::CellTopology::hotspot(cells, hotspot_exponent);
    }
    return multicell::CellTopology::uniform(cells);
}

ScenarioSpec::ScenarioSpec() : profile(traffic::massive_iot_city()) {}

ScenarioSpec& ScenarioSpec::with_name(std::string value) {
    name = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_description(std::string value) {
    description = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_profile(traffic::PopulationProfile value) {
    profile = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_devices(std::size_t value) {
    device_count = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_payload_bytes(std::int64_t value) {
    payload_bytes = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_runs(std::size_t value) {
    runs = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_seed(std::uint64_t value) {
    base_seed = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_threads(std::size_t value) {
    threads = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_mechanisms(std::vector<core::MechanismKind> value) {
    mechanisms = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_config(core::CampaignConfig value) {
    config = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_inactivity_timer_ms(std::int64_t value) {
    config.inactivity_timer = nbiot::SimTime{value};
    return *this;
}
ScenarioSpec& ScenarioSpec::with_strata(std::size_t value) {
    config.strata = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_cells(std::size_t cells) {
    TopologySpec topo;  // fresh uniform grid, as documented
    topo.cells = cells;
    topology = topo;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_cell_count(std::size_t cells) {
    TopologySpec topo = topology.value_or(TopologySpec{});
    topo.cells = cells;
    topo.custom.reset();
    topology = topo;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_topology(TopologySpec value) {
    topology = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_hotspot(std::size_t cells, double exponent) {
    TopologySpec topo;
    topo.cells = cells;
    topo.kind = TopologySpec::Kind::hotspot;
    topo.hotspot_exponent = exponent;
    topology = topo;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_assignment(multicell::AssignmentPolicy value) {
    assignment = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_populations(core::SharedPopulations value) {
    populations = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_coordinator(multicell::CoordinatorSpec value) {
    coordinator = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_stagger_ms(std::int64_t value) {
    multicell::CoordinatorSpec spec;
    spec.policy = multicell::StartPolicy::fixed_stagger;
    spec.stagger_ms = value;
    coordinator = spec;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_backhaul_kbps(double value) {
    multicell::CoordinatorSpec spec;
    spec.policy = multicell::StartPolicy::backhaul_budgeted;
    spec.backhaul_kbps = value;
    coordinator = spec;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_backhaul_loss(double value) {
    if (!coordinator ||
        coordinator->policy != multicell::StartPolicy::backhaul_budgeted) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': backhaul loss needs a backhaul coordinator (call "
            "with_backhaul_kbps first)");
    }
    coordinator->loss_prob = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::without_coordinator() {
    coordinator.reset();
    return *this;
}
ScenarioSpec& ScenarioSpec::with_churn(double leave_rate, std::int64_t rejoin_ms) {
    config.churn.leave_rate = leave_rate;
    config.churn.rejoin_ms = rejoin_ms;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_cell_down(faults::OutageSpec value) {
    cell_down = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_telemetry(TelemetrySpec value) {
    telemetry = std::move(value);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_telemetry_modes(bool trace, bool metrics) {
    telemetry.trace = trace;
    telemetry.metrics = metrics;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_trace_out(std::string path) {
    telemetry.trace = true;
    telemetry.trace_out = std::move(path);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_metrics_out(std::string path) {
    telemetry.metrics = true;
    telemetry.metrics_out = std::move(path);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_timeline_out(std::string path) {
    telemetry.trace = true;
    telemetry.timeline_out = std::move(path);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_telemetry_bucket_ms(std::int64_t value) {
    telemetry.bucket_ms = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_checkpoint_out(std::string path) {
    checkpoint.out = std::move(path);
    return *this;
}
ScenarioSpec& ScenarioSpec::with_checkpoint_every_ms(std::int64_t value) {
    checkpoint.every_ms = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_checkpoint_stop_after(std::uint64_t value) {
    checkpoint.stop_after = value;
    return *this;
}
ScenarioSpec& ScenarioSpec::with_resume(std::string path) {
    checkpoint.resume = std::move(path);
    return *this;
}
ScenarioSpec& ScenarioSpec::single_cell() {
    topology.reset();
    coordinator.reset();
    return *this;
}

void ScenarioSpec::validate() const {
    if (device_count == 0) {
        throw std::invalid_argument("scenario '" + name + "': devices must be >= 1");
    }
    if (runs == 0) {
        throw std::invalid_argument("scenario '" + name + "': runs must be >= 1");
    }
    if (payload_bytes <= 0) {
        throw std::invalid_argument("scenario '" + name +
                                    "': payload must be >= 1 byte");
    }
    if (!profile.valid()) {
        throw std::invalid_argument("scenario '" + name +
                                    "': invalid population profile '" +
                                    profile.name + "'");
    }
    if (!std::isfinite(profile.batch_mean) || profile.batch_mean < 1.0) {
        throw std::invalid_argument("scenario '" + name +
                                    "': batch_mean must be finite and >= 1");
    }
    if (!std::isfinite(config.page_miss_prob) ||
        !std::isfinite(config.background_ra_per_second)) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': campaign config rates must be finite");
    }
    if (config.strata < 1 || config.strata > core::kMaxStrata) {
        throw std::invalid_argument("scenario '" + name + "': strata must be in [1, " +
                                    std::to_string(core::kMaxStrata) + "]");
    }
    if (!config.churn.valid()) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': invalid churn (leave_rate must be finite and >= 0; enabled "
            "churn needs rejoin_ms >= 1)");
    }
    if (!config.valid()) {
        throw std::invalid_argument("scenario '" + name +
                                    "': invalid campaign config");
    }
    if (mechanisms.empty()) {
        throw std::invalid_argument("scenario '" + name +
                                    "': mechanism list must not be empty");
    }
    if (topology) {
        if (topology->cells == 0) {
            throw std::invalid_argument("scenario '" + name +
                                        "': cells must be >= 1");
        }
        if (!(topology->hotspot_exponent >= 0.0) ||
            !std::isfinite(topology->hotspot_exponent)) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': hotspot_exponent must be finite and >= 0");
        }
        if (!topology->realize().valid()) {
            throw std::invalid_argument("scenario '" + name +
                                        "': invalid cell topology");
        }
    }
    if (coordinator) {
        if (!topology) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': coordinator requires a multicell topology (cells)");
        }
        if (!coordinator->valid()) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': invalid coordinator (policy-scoped knobs: stagger_ms >= 0 "
                "needs fixed-stagger, finite backhaul_kbps > 0 and loss_prob "
                "in [0, 1) need backhaul)");
        }
    }
    if (cell_down) {
        if (!topology) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': faults.cell_down requires a multicell topology (cells)");
        }
        if (!cell_down->valid()) {
            throw std::invalid_argument(
                "scenario '" + name + "': faults.cell_down time must be >= 1 ms");
        }
        if (cell_down->cell >= topology->cells) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': faults.cell_down names cell " +
                std::to_string(cell_down->cell) + " but the topology has " +
                std::to_string(topology->cells) + " cells");
        }
    }
    if (telemetry.bucket_ms < 1) {
        throw std::invalid_argument("scenario '" + name +
                                    "': telemetry.bucket_ms must be >= 1");
    }
    if ((!telemetry.trace_out.empty() || !telemetry.timeline_out.empty()) &&
        !telemetry.trace) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': trace_out/timeline_out need trace collection enabled "
            "(telemetry = trace or full)");
    }
    if (!telemetry.metrics_out.empty() && !telemetry.metrics) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': metrics_out needs metrics collection enabled "
            "(telemetry = metrics or full)");
    }
    if (checkpoint.every_ms < 0) {
        throw std::invalid_argument("scenario '" + name +
                                    "': checkpoint.every_ms must be >= 0");
    }
    if ((checkpoint.every_ms != 0 || checkpoint.stop_after != 0) &&
        checkpoint.out.empty()) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': checkpoint.every_ms/checkpoint.stop_after need a snapshot "
            "path (checkpoint.out)");
    }
    if (populations) {
        if (populations->profile_name != profile.name ||
            populations->device_count != device_count ||
            populations->base_seed != base_seed) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': shared populations were generated for a different "
                "(profile, device_count, base_seed)");
        }
        if (populations->runs.size() < runs) {
            throw std::invalid_argument(
                "scenario '" + name +
                "': shared populations cover fewer runs than the scenario");
        }
    }
}

std::string ScenarioSpec::to_file_text() const {
    if (!Registry::instance().has_profile(profile.name)) {
        throw std::invalid_argument(
            "scenario '" + name + "': profile '" + profile.name +
            "' is not a registered builtin; the scenario-file format stores "
            "profiles by name");
    }
    // Profiles travel by name (+ batch_mean): any deeper edit under a
    // registered name would silently reload as the builtin.
    traffic::PopulationProfile builtin = Registry::instance().profile(profile.name);
    builtin.batch_mean = profile.batch_mean;
    if (!(profile == builtin)) {
        throw std::invalid_argument(
            "scenario '" + name + "': profile '" + profile.name +
            "' was modified beyond batch_mean; the scenario-file format "
            "cannot express per-class edits");
    }
    if (topology && !topology->file_expressible()) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': custom cell topologies (per-cell weights/capacity overrides) "
            "cannot be expressed in a scenario file");
    }
    if (config.outage_at_ms != -1) {
        // The per-campaign outage instant is engine plumbing run_deployment
        // derives from cell_down; refusing keeps the serializer from
        // silently dropping a programmatic override.
        throw std::invalid_argument(
            "scenario '" + name +
            "': config.outage_at_ms is engine plumbing; describe outages with "
            "cell_down (faults.cell_down) instead");
    }
    if (coordinator && !topology) {
        // Invalid anyway (validate rejects it); refusing here keeps the
        // serializer from silently dropping the coordinator keys.
        throw std::invalid_argument(
            "scenario '" + name +
            "': coordinator requires a multicell topology (cells)");
    }
    // Deep config (timing/RACH/radio/signaling models, the paging geometry
    // beyond max_page_records) has no file keys; refuse to serialize specs
    // that changed it rather than silently reloading defaults.
    const core::CampaignConfig defaults{};
    const bool deep_config_default =
        config.timing == defaults.timing && config.rach == defaults.rach &&
        config.radio == defaults.radio && config.sizes == defaults.sizes &&
        config.paging.nb_num == defaults.paging.nb_num &&
        config.paging.nb_den == defaults.paging.nb_den &&
        config.paging.ue_id_modulus == defaults.paging.ue_id_modulus;
    if (!deep_config_default) {
        throw std::invalid_argument(
            "scenario '" + name +
            "': deep campaign config (timing/rach/radio/signaling/paging "
            "geometry) differs from the defaults and has no scenario-file "
            "keys; keep such specs programmatic");
    }

    std::ostringstream out;
    // Full round-trip precision: a saved-and-reloaded spec must run the
    // same experiment, so doubles may not lose digits on the way out.
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "# nbmg scenario file (key = value; '#' starts a comment)\n";
    out << "name = " << name << "\n";
    if (!description.empty()) out << "description = " << description << "\n";
    out << "profile = " << profile.name << "\n";
    const double builtin_batch_mean =
        Registry::instance().profile(profile.name).batch_mean;
    if (profile.batch_mean != builtin_batch_mean) {
        out << "batch_mean = " << profile.batch_mean << "\n";
    }
    out << "devices = " << device_count << "\n";
    out << "payload_bytes = " << payload_bytes << "\n";
    out << "runs = " << runs << "\n";
    out << "seed = " << base_seed << "\n";
    if (threads != 0) out << "threads = " << threads << "\n";
    out << "mechanisms = ";
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
        if (m != 0) out << ",";
        out << Registry::instance().mechanism_name(mechanisms[m]);
    }
    out << "\n";
    out << "ti_ms = " << config.inactivity_timer.count() << "\n";
    out << "ra_guard_ms = " << config.ra_guard.count() << "\n";
    out << "include_inactivity_tail = "
        << (config.include_inactivity_tail ? "true" : "false") << "\n";
    out << "page_miss_prob = " << config.page_miss_prob << "\n";
    out << "max_page_attempts = " << config.max_page_attempts << "\n";
    out << "background_ra_per_second = " << config.background_ra_per_second << "\n";
    out << "max_page_records = " << config.paging.max_page_records << "\n";
    out << "sc_ptm_mcch_period_ms = " << config.sc_ptm_mcch_period.count() << "\n";
    if (config.strata != 1) out << "strata = " << config.strata << "\n";
    if (config.churn.enabled()) {
        out << "churn.leave_rate = " << config.churn.leave_rate << "\n";
        out << "churn.rejoin_ms = " << config.churn.rejoin_ms << "\n";
    }
    if (telemetry.enabled()) {
        out << "telemetry = "
            << (telemetry.trace && telemetry.metrics
                    ? "full"
                    : (telemetry.trace ? "trace" : "metrics"))
            << "\n";
        if (telemetry.bucket_ms != TelemetrySpec{}.bucket_ms) {
            out << "telemetry.bucket_ms = " << telemetry.bucket_ms << "\n";
        }
        if (!telemetry.trace_out.empty()) {
            out << "trace_out = " << telemetry.trace_out << "\n";
        }
        if (!telemetry.metrics_out.empty()) {
            out << "metrics_out = " << telemetry.metrics_out << "\n";
        }
        if (!telemetry.timeline_out.empty()) {
            out << "timeline_out = " << telemetry.timeline_out << "\n";
        }
    }
    if (checkpoint.enabled()) {
        if (!checkpoint.out.empty()) {
            out << "checkpoint.out = " << checkpoint.out << "\n";
        }
        if (checkpoint.every_ms != 0) {
            out << "checkpoint.every_ms = " << checkpoint.every_ms << "\n";
        }
        if (checkpoint.stop_after != 0) {
            out << "checkpoint.stop_after = " << checkpoint.stop_after << "\n";
        }
        if (!checkpoint.resume.empty()) {
            out << "checkpoint.resume = " << checkpoint.resume << "\n";
        }
    }
    if (topology) {
        out << "cells = " << topology->cells << "\n";
        out << "topology = " << to_string(topology->kind) << "\n";
        if (topology->kind == TopologySpec::Kind::hotspot) {
            out << "hotspot_exponent = " << topology->hotspot_exponent << "\n";
        }
        out << "assignment = " << multicell::to_string(assignment) << "\n";
        if (coordinator) {
            out << "coordinator = " << multicell::to_string(coordinator->policy)
                << "\n";
            if (coordinator->policy == multicell::StartPolicy::fixed_stagger) {
                out << "coordinator.stagger_ms = " << coordinator->stagger_ms
                    << "\n";
            }
            if (coordinator->policy == multicell::StartPolicy::backhaul_budgeted) {
                out << "coordinator.backhaul_kbps = " << coordinator->backhaul_kbps
                    << "\n";
                if (coordinator->loss_prob != 0.0) {
                    out << "faults.backhaul_loss = " << coordinator->loss_prob
                        << "\n";
                }
            }
        }
        if (cell_down) {
            out << "faults.cell_down = " << faults::format_cell_down(*cell_down)
                << "\n";
        }
    }
    return out.str();
}

ScenarioSpec from_setup(const core::ComparisonSetup& setup) {
    ScenarioSpec spec;
    spec.name = "comparison-setup";
    spec.profile = setup.profile;
    spec.device_count = setup.device_count;
    spec.payload_bytes = setup.payload_bytes;
    spec.config = setup.config;
    spec.runs = setup.runs;
    spec.base_seed = setup.base_seed;
    spec.threads = setup.threads;
    spec.mechanisms = setup.mechanisms;
    spec.populations = setup.populations;
    spec.topology.reset();
    return spec;
}

ScenarioSpec from_setup(const multicell::DeploymentSetup& setup) {
    ScenarioSpec spec;
    spec.name = "deployment-setup";
    spec.profile = setup.profile;
    spec.device_count = setup.device_count;
    spec.payload_bytes = setup.payload_bytes;
    spec.config = setup.config;
    spec.runs = setup.runs;
    spec.base_seed = setup.base_seed;
    spec.threads = setup.threads;
    spec.mechanisms = setup.mechanisms;
    spec.populations = setup.populations;
    spec.assignment = setup.assignment;
    spec.cell_down = setup.cell_down;

    TopologySpec topo;
    topo.cells = setup.topology.cell_count();
    // A plain uniform grid stays declarative (and therefore serializable);
    // anything else travels verbatim through `custom`.
    bool uniform = true;
    for (const multicell::CellSite& site : setup.topology.cells) {
        if (site.weight != 1.0 || site.max_page_records_override != 0) {
            uniform = false;
            break;
        }
    }
    if (!uniform) topo.custom = setup.topology;
    spec.topology = topo;
    return spec;
}

core::ComparisonSetup to_comparison_setup(const ScenarioSpec& spec) {
    if (spec.is_multicell()) {
        throw std::invalid_argument(
            "scenario '" + spec.name +
            "': multicell scenarios run the deployment engine, not "
            "run_comparison");
    }
    core::ComparisonSetup setup;
    setup.profile = spec.profile;
    setup.device_count = spec.device_count;
    setup.payload_bytes = spec.payload_bytes;
    setup.config = spec.config;
    setup.runs = spec.runs;
    setup.base_seed = spec.base_seed;
    setup.threads = spec.threads;
    setup.mechanisms = spec.mechanisms;
    setup.populations = spec.populations;
    return setup;
}

multicell::DeploymentSetup to_deployment_setup(const ScenarioSpec& spec) {
    multicell::DeploymentSetup setup;
    setup.profile = spec.profile;
    setup.device_count = spec.device_count;
    setup.payload_bytes = spec.payload_bytes;
    setup.config = spec.config;
    setup.runs = spec.runs;
    setup.base_seed = spec.base_seed;
    setup.threads = spec.threads;
    setup.mechanisms = spec.mechanisms;
    setup.populations = spec.populations;
    setup.assignment = spec.assignment;
    setup.topology = spec.topology ? spec.topology->realize()
                                   : multicell::CellTopology::uniform(1);
    setup.cell_down = spec.cell_down;
    return setup;
}

}  // namespace nbmg::scenario
