// The one strict non-negative-decimal parser behind every scenario-layer
// number: command-line flags (cli.hpp), positionals (cli.cpp) and
// scenario-file values (parser.cpp) all share these mechanics and differ
// only in how they report the error, so a rule change (e.g. rejecting a
// new edge) cannot silently miss one entry point.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace nbmg::scenario {

enum class U64ParseError : std::uint8_t {
    none,
    empty,         // ""
    negative,      // leading '-'
    not_decimal,   // non-digit lead (catches ' 5', '+7') or trailing junk
    out_of_range,  // > UINT64_MAX
};

/// Parses `text` as a non-negative decimal integer into `out`.  The whole
/// string must be digits: no sign, no whitespace, no trailing junk.
[[nodiscard]] inline U64ParseError parse_strict_u64(const char* text,
                                                    std::uint64_t& out) noexcept {
    if (*text == '\0') return U64ParseError::empty;
    if (*text == '-') return U64ParseError::negative;
    // strtoull itself skips whitespace and accepts a sign; insist the value
    // starts with a digit so ' -5' or '+7' cannot sneak past.
    if (std::isdigit(static_cast<unsigned char>(*text)) == 0) {
        return U64ParseError::not_decimal;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (errno == ERANGE) return U64ParseError::out_of_range;
    if (end == text || *end != '\0') return U64ParseError::not_decimal;
    out = static_cast<std::uint64_t>(parsed);
    return U64ParseError::none;
}

enum class DoubleParseError : std::uint8_t {
    none,
    empty,       // ""
    not_number,  // not a full numeric token
    not_finite,  // inf/nan/overflow (a non-finite knob would sail through
                 // range checks — NaN compares false — and blow up deep in
                 // the library)
};

/// Parses `text` as a finite double.  The whole string must be the number:
/// no whitespace, no trailing junk.
[[nodiscard]] inline DoubleParseError parse_strict_double(const char* text,
                                                          double& out) noexcept {
    if (*text == '\0') return DoubleParseError::empty;
    if (std::isspace(static_cast<unsigned char>(*text)) != 0) {
        return DoubleParseError::not_number;  // strtod would skip it
    }
    // strtod accepts C99 hex-float tokens ('0x10' = 16.0, '0x1p3' = 8.0),
    // which the decimal-only grammar of parse_strict_u64 rejects; an 'x'
    // anywhere in the token means it is not a plain decimal number.
    for (const char* c = text; *c != '\0'; ++c) {
        if (*c == 'x' || *c == 'X') return DoubleParseError::not_number;
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(text, &end);
    if (end == text || *end != '\0') return DoubleParseError::not_number;
    if (errno == ERANGE || !std::isfinite(parsed)) {
        return DoubleParseError::not_finite;
    }
    out = parsed;
    return DoubleParseError::none;
}

}  // namespace nbmg::scenario
