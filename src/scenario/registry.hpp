// String-keyed registry for the scenario layer: mechanism spellings,
// population profiles, and named preset scenarios.
//
// Drivers (bench shells, examples, the scenario-file parser) resolve names
// through the registry instead of switch-casing, so a new mechanism,
// profile or preset becomes available to every binary by registering it
// once.  The built-ins (the paper's mechanisms, the traffic profiles, and
// one preset per shipped bench/example workload) self-register when the
// singleton is first touched; duplicate-name registration throws, and
// unknown-name lookups throw with the list of available names so a typo on
// the command line is self-diagnosing.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace nbmg::scenario {

class Registry {
public:
    struct MechanismEntry {
        std::string name;  // command-line / scenario-file spelling
        core::MechanismKind kind = core::MechanismKind::unicast;
        std::string description;
    };
    struct PresetEntry {
        std::string name;
        std::string description;
        ScenarioSpec spec;
    };

    /// The process-wide registry, built-ins pre-registered.
    [[nodiscard]] static Registry& instance();

    // --- mechanisms ---
    /// Throws std::invalid_argument when `entry.name` is already taken.
    void register_mechanism(MechanismEntry entry);
    /// Throws std::invalid_argument listing the registered spellings.
    [[nodiscard]] core::MechanismKind mechanism(std::string_view name) const;
    [[nodiscard]] std::optional<core::MechanismKind> find_mechanism(
        std::string_view name) const noexcept;
    /// Canonical spelling of a kind (first registered entry for it).
    [[nodiscard]] std::string mechanism_name(core::MechanismKind kind) const;
    [[nodiscard]] std::vector<std::string> mechanism_names() const;

    // --- population profiles ---
    /// Throws std::invalid_argument when the profile's name is taken.
    void register_profile(traffic::PopulationProfile profile);
    /// Throws std::invalid_argument listing the registered names.
    [[nodiscard]] traffic::PopulationProfile profile(std::string_view name) const;
    [[nodiscard]] bool has_profile(std::string_view name) const noexcept;
    [[nodiscard]] std::vector<std::string> profile_names() const;

    // --- preset scenarios ---
    /// Throws std::invalid_argument when `name` is already taken.
    void register_preset(std::string name, std::string description,
                         ScenarioSpec spec);
    /// Throws std::invalid_argument listing the registered names.
    [[nodiscard]] ScenarioSpec preset(std::string_view name) const;
    [[nodiscard]] bool has_preset(std::string_view name) const noexcept;
    [[nodiscard]] std::vector<std::string> preset_names() const;
    [[nodiscard]] std::vector<PresetEntry> presets() const;

private:
    Registry();

    mutable std::mutex mutex_;
    std::vector<MechanismEntry> mechanisms_;
    std::vector<traffic::PopulationProfile> profiles_;
    std::vector<PresetEntry> presets_;
};

}  // namespace nbmg::scenario
