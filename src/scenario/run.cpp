#include "scenario/run.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/report.hpp"

namespace nbmg::scenario {

const core::MechanismStats& ScenarioResult::unicast_stats() const noexcept {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->unicast;
    }
    return std::get<multicell::DeploymentResult>(outcome).unicast.stats;
}

const core::MechanismStats& ScenarioResult::mechanism_stats(
    std::size_t index) const {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->mechanisms.at(index);
    }
    return std::get<multicell::DeploymentResult>(outcome).mechanisms.at(index).stats;
}

std::size_t ScenarioResult::mechanism_count() const noexcept {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->mechanisms.size();
    }
    return std::get<multicell::DeploymentResult>(outcome).mechanisms.size();
}

stats::Table ScenarioResult::summary_table() const {
    std::vector<const core::MechanismStats*> mechanisms;
    mechanisms.reserve(mechanism_count());
    for (std::size_t m = 0; m < mechanism_count(); ++m) {
        mechanisms.push_back(&mechanism_stats(m));
    }
    return core::mechanism_summary_table(unicast_stats(), mechanisms);
}

std::string ScenarioResult::summary_csv() const { return summary_table().to_csv(); }

stats::Table ScenarioResult::coordination_table() const {
    if (!coordination) {
        throw std::logic_error(
            "ScenarioResult::coordination_table: scenario ran without a "
            "coordinator");
    }
    const multicell::CoordinationAggregates& agg = *coordination;
    stats::Table table({"time-axis metric", "mean", "min", "max"});
    const auto row = [&](const char* metric, const stats::Summary& summary,
                         double factor, int precision) {
        table.add_row(
            {metric, stats::Table::cell(summary.mean() * factor, precision),
             stats::Table::cell(summary.min() * factor, precision),
             stats::Table::cell(summary.max() * factor, precision)});
    };
    row("city completion (s)", agg.completion_ms, 1e-3, 1);
    row("start spread (s)", agg.start_spread_ms, 1e-3, 1);
    row("peak concurrent cells", agg.peak_concurrent_cells, 1.0, 0);
    row("backhaul busy (s)", agg.backhaul_busy_ms, 1e-3, 1);
    row("backhaul utilization", agg.backhaul_utilization, 1.0, 3);
    return table;
}

std::string ScenarioResult::coordination_csv() const {
    return coordination_table().to_csv();
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
    spec.validate();
    ScenarioResult result;
    result.spec = spec;
    if (spec.is_multicell()) {
        if (spec.coordinator) {
            multicell::CoordinatedResult coordinated =
                multicell::run_coordinated(to_deployment_setup(spec),
                                           *spec.coordinator);
            result.coordination = std::move(coordinated.coordination);
            result.outcome = std::move(coordinated.deployment);
        } else {
            result.outcome = multicell::run_deployment(to_deployment_setup(spec));
        }
    } else {
        result.outcome = core::run_comparison(to_comparison_setup(spec));
    }
    return result;
}

}  // namespace nbmg::scenario
