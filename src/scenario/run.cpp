#include "scenario/run.hpp"

#include <vector>

#include "core/report.hpp"

namespace nbmg::scenario {

const core::MechanismStats& ScenarioResult::unicast_stats() const noexcept {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->unicast;
    }
    return std::get<multicell::DeploymentResult>(outcome).unicast.stats;
}

const core::MechanismStats& ScenarioResult::mechanism_stats(
    std::size_t index) const {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->mechanisms.at(index);
    }
    return std::get<multicell::DeploymentResult>(outcome).mechanisms.at(index).stats;
}

std::size_t ScenarioResult::mechanism_count() const noexcept {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->mechanisms.size();
    }
    return std::get<multicell::DeploymentResult>(outcome).mechanisms.size();
}

stats::Table ScenarioResult::summary_table() const {
    std::vector<const core::MechanismStats*> mechanisms;
    mechanisms.reserve(mechanism_count());
    for (std::size_t m = 0; m < mechanism_count(); ++m) {
        mechanisms.push_back(&mechanism_stats(m));
    }
    return core::mechanism_summary_table(unicast_stats(), mechanisms);
}

std::string ScenarioResult::summary_csv() const { return summary_table().to_csv(); }

ScenarioResult run_scenario(const ScenarioSpec& spec) {
    spec.validate();
    ScenarioResult result;
    result.spec = spec;
    if (spec.is_multicell()) {
        result.outcome = multicell::run_deployment(to_deployment_setup(spec));
    } else {
        result.outcome = core::run_comparison(to_comparison_setup(spec));
    }
    return result;
}

}  // namespace nbmg::scenario
