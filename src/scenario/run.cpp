#include "scenario/run.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "snapshot/checkpoint.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/export.hpp"

namespace nbmg::scenario {
namespace {

/// Writes a telemetry artifact; an empty path means "keep it in-memory
/// only".  Failures throw ScenarioError so shells exit with a diagnostic
/// instead of silently dropping the artifact.
void write_artifact(const std::string& path, const std::string& text) {
    if (path.empty()) return;
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
        throw ScenarioError("cannot open telemetry output file '" + path +
                            "' for writing");
    }
    file.write(text.data(), static_cast<std::streamsize>(text.size()));
    file.flush();
    if (!file) {
        throw ScenarioError("write to telemetry output file '" + path +
                            "' failed");
    }
}

/// Results-identity fingerprint of a spec: FNV-1a64 over the scenario file
/// text of a normalized copy — the checkpoint block, the telemetry output
/// paths, the thread count, and the informational name/description are
/// cleared first.  Resuming across --threads or into different artifact
/// paths is therefore allowed, while any results-affecting change (devices,
/// seed, strata, mechanisms, topology, coordinator, telemetry modes, ...)
/// changes the fingerprint and is rejected at load time.
std::uint64_t spec_fingerprint(const ScenarioSpec& spec) {
    ScenarioSpec normalized = spec;
    normalized.name.clear();
    normalized.description.clear();
    normalized.threads = 0;
    normalized.checkpoint = CheckpointSpec{};
    normalized.telemetry.trace_out.clear();
    normalized.telemetry.metrics_out.clear();
    normalized.telemetry.timeline_out.clear();
    std::string text;
    try {
        text = normalized.to_file_text();
    } catch (const std::invalid_argument& error) {
        // A custom topology / unregistered profile has no file form, so
        // there is nothing stable to fingerprint (or to resume against).
        throw ScenarioError(
            std::string("checkpointing requires a file-expressible "
                        "scenario: ") +
            error.what());
    }
    std::uint64_t hash = 14695981039346656037ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

}  // namespace

const core::MechanismStats& ScenarioResult::unicast_stats() const noexcept {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->unicast;
    }
    return std::get<multicell::DeploymentResult>(outcome).unicast.stats;
}

const core::MechanismStats& ScenarioResult::mechanism_stats(
    std::size_t index) const {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->mechanisms.at(index);
    }
    return std::get<multicell::DeploymentResult>(outcome).mechanisms.at(index).stats;
}

std::size_t ScenarioResult::mechanism_count() const noexcept {
    if (const auto* comparison_outcome =
            std::get_if<core::ComparisonOutcome>(&outcome)) {
        return comparison_outcome->mechanisms.size();
    }
    return std::get<multicell::DeploymentResult>(outcome).mechanisms.size();
}

stats::Table ScenarioResult::summary_table() const {
    std::vector<const core::MechanismStats*> mechanisms;
    mechanisms.reserve(mechanism_count());
    for (std::size_t m = 0; m < mechanism_count(); ++m) {
        mechanisms.push_back(&mechanism_stats(m));
    }
    return core::mechanism_summary_table(unicast_stats(), mechanisms);
}

std::string ScenarioResult::summary_csv() const { return summary_table().to_csv(); }

stats::Table ScenarioResult::coordination_table() const {
    if (!coordination) {
        throw std::logic_error(
            "ScenarioResult::coordination_table: scenario ran without a "
            "coordinator");
    }
    const multicell::CoordinationAggregates& agg = *coordination;
    stats::Table table({"time-axis metric", "mean", "min", "max"});
    const auto row = [&](const char* metric, const stats::Summary& summary,
                         double factor, int precision) {
        table.add_row(
            {metric, stats::Table::cell(summary.mean() * factor, precision),
             stats::Table::cell(summary.min() * factor, precision),
             stats::Table::cell(summary.max() * factor, precision)});
    };
    row("city completion (s)", agg.completion_ms, 1e-3, 1);
    row("start spread (s)", agg.start_spread_ms, 1e-3, 1);
    row("peak concurrent cells", agg.peak_concurrent_cells, 1.0, 0);
    row("backhaul busy (s)", agg.backhaul_busy_ms, 1e-3, 1);
    row("backhaul utilization", agg.backhaul_utilization, 1.0, 3);
    row("redelivered (KB)", agg.redelivered_bytes, 1.0 / 1024.0, 1);
    return table;
}

std::string ScenarioResult::coordination_csv() const {
    return coordination_table().to_csv();
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
    spec.validate();
    ScenarioResult result;
    result.spec = spec;

    // The collector is sized up front — runs x cells x (mechanisms + 1)
    // pre-allocated campaign slots (0 = unicast), plus one city sink per
    // run — so the sweeps write disjoint slots lock-free and the exporters
    // iterate them in deterministic order.
    std::optional<telemetry::Collector> collector;
    if (spec.telemetry.enabled()) {
        telemetry::TelemetryConfig config;
        config.trace = spec.telemetry.trace;
        config.metrics = spec.telemetry.metrics;
        config.bucket_ms = spec.telemetry.bucket_ms;
        std::vector<std::string> labels;
        labels.reserve(spec.mechanisms.size() + 1);
        labels.push_back(
            Registry::instance().mechanism_name(core::MechanismKind::unicast));
        for (const core::MechanismKind kind : spec.mechanisms) {
            labels.push_back(Registry::instance().mechanism_name(kind));
        }
        collector.emplace(config, spec.runs, spec.cell_count(),
                          std::move(labels));
    }

    // The checkpoint context (if any) is shared by every sweep worker; the
    // engines consult it at (run, cell) task boundaries.
    std::optional<snapshot::CheckpointContext> checkpoint;
    if (spec.checkpoint.enabled()) {
        snapshot::CheckpointHeader header;
        header.fingerprint = spec_fingerprint(spec);
        header.engine = spec.is_multicell() ? 1 : 0;
        header.runs = spec.runs;
        header.cells = spec.cell_count();
        header.campaigns = spec.mechanisms.size() + 1;
        checkpoint.emplace(header, spec.checkpoint.out,
                           spec.checkpoint.every_ms, spec.checkpoint.stop_after);
        if (!spec.checkpoint.resume.empty()) {
            checkpoint->load(spec.checkpoint.resume);
        }
    }

    if (spec.is_multicell()) {
        multicell::DeploymentSetup setup = to_deployment_setup(spec);
        if (collector) setup.telemetry = &*collector;
        if (checkpoint) setup.checkpoint = &*checkpoint;
        if (spec.coordinator) {
            multicell::CoordinatedResult coordinated =
                multicell::run_coordinated(setup, *spec.coordinator);
            result.coordination = std::move(coordinated.coordination);
            result.outcome = std::move(coordinated.deployment);
        } else {
            result.outcome = multicell::run_deployment(setup);
        }
    } else {
        core::ComparisonSetup setup = to_comparison_setup(spec);
        if (collector) setup.telemetry = &*collector;
        if (checkpoint) setup.checkpoint = &*checkpoint;
        result.outcome = core::run_comparison(setup);
    }
    // Leave a complete snapshot behind on normal completion, so a
    // time-sharded driver may treat "finished" and "stopped" uniformly.
    if (checkpoint) checkpoint->save_final();

    if (collector) {
        TelemetryReport report;
        report.config = spec.telemetry;
        if (spec.telemetry.trace) {
            report.trace_jsonl = telemetry::trace_jsonl(*collector);
            report.timeline_json = telemetry::timeline_json(
                *collector,
                result.coordination ? &*result.coordination : nullptr);
        }
        if (spec.telemetry.metrics) {
            report.metrics = telemetry::metrics_table(*collector);
        }
        write_artifact(spec.telemetry.trace_out, report.trace_jsonl);
        if (report.metrics) {
            write_artifact(spec.telemetry.metrics_out, report.metrics->to_csv());
        }
        write_artifact(spec.telemetry.timeline_out, report.timeline_json);
        result.telemetry = std::move(report);
    }
    return result;
}

ScenarioResult run_scenario_or_exit(const ScenarioSpec& spec) {
    try {
        return run_scenario(spec);
    } catch (const snapshot::CheckpointStop& stop) {
        // A deliberate mid-flight stop, not an error: report where the
        // snapshot landed and exit 3 so drivers can tell "resume me" from
        // usage failures (2) and success (0).
        std::fprintf(stderr, "%s\n", stop.what());
        std::exit(3);
    } catch (const snapshot::SnapshotError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
    } catch (const ScenarioError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
    } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
    }
    std::exit(2);
}

}  // namespace nbmg::scenario
