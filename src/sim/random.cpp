#include "sim/random.hpp"

#include <numeric>
#include <sstream>

namespace nbmg::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::string_view label,
                          std::uint64_t index) noexcept {
    std::uint64_t h = kFnvOffset ^ root;
    for (const char c : label) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= kFnvPrime;
    }
    h ^= index + 0x9E3779B97F4A7C15ULL;
    return splitmix64(splitmix64(h));
}

std::string RandomStream::save_state() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
}

void RandomStream::load_state(const std::string& state) {
    std::istringstream in(state);
    std::mt19937_64 restored;
    in >> restored;
    if (in.fail()) {
        throw std::invalid_argument("RandomStream::load_state: malformed state text");
    }
    engine_ = restored;
}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("RandomStream::uniform_int: lo > hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double RandomStream::uniform_real(double lo, double hi) {
    if (lo > hi) throw std::invalid_argument("RandomStream::uniform_real: lo > hi");
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

bool RandomStream::bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

double RandomStream::exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("RandomStream::exponential: mean <= 0");
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

std::int64_t RandomStream::geometric(double p) {
    if (p <= 0.0 || p > 1.0) {
        throw std::invalid_argument("RandomStream::geometric: p outside (0, 1]");
    }
    if (p == 1.0) return 0;
    std::geometric_distribution<std::int64_t> dist(p);
    return dist(engine_);
}

std::size_t RandomStream::weighted_index(std::span<const double> weights) {
    if (weights.empty()) {
        throw std::invalid_argument("RandomStream::weighted_index: no weights");
    }
    double total = 0.0;
    for (const double w : weights) {
        if (w < 0.0) throw std::invalid_argument("RandomStream::weighted_index: negative weight");
        total += w;
    }
    if (total <= 0.0) {
        throw std::invalid_argument("RandomStream::weighted_index: zero total weight");
    }
    const double r = uniform_real(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc) return i;
    }
    return weights.size() - 1;  // floating-point edge: r == total
}

}  // namespace nbmg::sim
