#include "sim/simulation.hpp"

// Simulation is header-only today; this translation unit anchors the library
// target and keeps a stable home for future out-of-line definitions.
namespace nbmg::sim {}
