// Seedable randomness for reproducible simulations.
//
// Every stochastic component receives its own RandomStream derived from a
// root seed plus a string label (and optionally a run index).  Streams are
// independent for distinct labels, and the whole experiment is reproducible
// from the root seed alone.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nbmg::sim {

/// Derives a 64-bit sub-seed from a root seed and a label.  Uses FNV-1a over
/// the label followed by splitmix64 finalization, which gives well-spread,
/// platform-independent seeds.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::string_view label,
                                        std::uint64_t index = 0) noexcept;

/// Convenience wrapper over mt19937_64 with the distributions the simulator
/// needs.  Copyable so a stream can be forked for what-if analysis.
class RandomStream {
public:
    explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive).
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi);

    /// True with probability p (clamped to [0, 1]).
    [[nodiscard]] bool bernoulli(double p);

    /// Exponentially distributed value with the given mean (> 0).
    [[nodiscard]] double exponential(double mean);

    /// Number of failures before the first success, success probability p
    /// in (0, 1].
    [[nodiscard]] std::int64_t geometric(double p);

    /// Index in [0, weights.size()) drawn proportionally to `weights`.
    /// Weights must be non-negative with a positive sum.
    [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

    /// Uniformly chosen element of a non-empty container.
    template <typename Container>
    [[nodiscard]] const auto& pick(const Container& c) {
        if (c.empty()) throw std::invalid_argument("RandomStream::pick: empty container");
        const auto idx = static_cast<std::size_t>(
            uniform_int(0, static_cast<std::int64_t>(c.size()) - 1));
        return c[idx];
    }

    /// Fisher-Yates shuffle.
    template <typename Container>
    void shuffle(Container& c) {
        if (c.size() < 2) return;
        for (std::size_t i = c.size() - 1; i > 0; --i) {
            const auto j = static_cast<std::size_t>(
                uniform_int(0, static_cast<std::int64_t>(i)));
            using std::swap;
            swap(c[i], c[j]);
        }
    }

    /// Raw 64-bit draw (for tests and hashing).
    [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

    /// Serializes the engine state as the standardized mt19937_64 textual
    /// token stream — decimal integers, portable across platforms and
    /// standard libraries, unlike a raw struct dump.
    [[nodiscard]] std::string save_state() const;

    /// Restores a state previously produced by save_state(); the stream
    /// then replays exactly the draws it would have produced from the
    /// saved point.  Throws std::invalid_argument on malformed text.
    void load_state(const std::string& state);

private:
    std::mt19937_64 engine_;
};

/// Factory handing out independent named streams from one root seed.
class RngFactory {
public:
    explicit RngFactory(std::uint64_t root_seed) : root_(root_seed) {}

    [[nodiscard]] std::uint64_t root_seed() const noexcept { return root_; }

    [[nodiscard]] RandomStream stream(std::string_view label, std::uint64_t index = 0) const {
        return RandomStream{derive_seed(root_, label, index)};
    }

private:
    std::uint64_t root_ = 0;
};

}  // namespace nbmg::sim
