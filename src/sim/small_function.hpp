// Type-erased move-only callable with inline storage for small targets —
// the allocation-free alternative to std::function on simulator hot
// paths.  Targets up to `Capacity` bytes (and alignable within
// max_align_t, with a nothrow move) live inline; larger ones fall back to
// one heap allocation.  `Capacity` is a tuning knob per use site: the
// event queue stores whole handlers inline at 48 bytes, while nested
// continuations (a callback captured inside a callback) pick a smaller
// capacity so the enclosing closure still fits its own inline buffer.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nbmg::sim {

template <typename Sig, std::size_t Capacity = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
public:
    static constexpr std::size_t kInlineCapacity = Capacity;

    SmallFunction() = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, SmallFunction> &&
                 std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
    SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
        using Target = std::decay_t<F>;
        if constexpr (fits_inline<Target>()) {
            ::new (static_cast<void*>(storage_)) Target(std::forward<F>(f));
            ops_ = &kInlineOps<Target>;
        } else {
            ::new (static_cast<void*>(storage_))
                Target*(new Target(std::forward<F>(f)));
            ops_ = &kHeapOps<Target>;
        }
    }

    SmallFunction(SmallFunction&& other) noexcept : ops_(other.ops_) {
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    SmallFunction& operator=(SmallFunction&& other) noexcept {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    SmallFunction(const SmallFunction&) = delete;
    SmallFunction& operator=(const SmallFunction&) = delete;

    ~SmallFunction() { reset(); }

    R operator()(Args... args) {
        assert(ops_ != nullptr);
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

    [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

private:
    struct Ops {
        R (*invoke)(void*, Args&&...);
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename Target>
    static constexpr bool fits_inline() {
        return sizeof(Target) <= kInlineCapacity &&
               alignof(Target) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Target>;
    }

    template <typename Target>
    static Target* as(void* p) noexcept {
        return std::launder(reinterpret_cast<Target*>(p));
    }

    template <typename Target>
    static constexpr Ops kInlineOps{
        [](void* p, Args&&... args) -> R {
            return (*as<Target>(p))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            ::new (dst) Target(std::move(*as<Target>(src)));
            as<Target>(src)->~Target();
        },
        [](void* p) noexcept { as<Target>(p)->~Target(); },
    };

    // The stored object is a Target* (trivially destructible), so relocation
    // is a pointer copy and only destroy() releases the heap target.
    template <typename Target>
    static constexpr Ops kHeapOps{
        [](void* p, Args&&... args) -> R {
            return (**as<Target*>(p))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept { ::new (dst) Target*(*as<Target*>(src)); },
        [](void* p) noexcept { delete *as<Target*>(p); },
    };

    alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
    const Ops* ops_ = nullptr;
};

}  // namespace nbmg::sim
