// Deterministic discrete-event queue for the NB-IoT cell simulator.
//
// Events scheduled for the same instant run in insertion order (FIFO
// tie-breaking), which makes every simulation bit-reproducible for a given
// seed.  Events are cancellable; cancellation is lazy (the entry stays in the
// heap but is skipped when popped).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace nbmg::sim {

/// Simulated time.  One subframe of the NB-IoT air interface is 1 ms, so
/// millisecond resolution captures everything the model needs.
using SimTime = std::chrono::milliseconds;

/// Identifies a scheduled event so it can be cancelled before it fires.
struct EventId {
    std::uint64_t value = 0;

    friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timed events with a simulated clock.
///
/// Invariants:
///  - `now()` never decreases;
///  - events never fire earlier than their scheduled time;
///  - equal-time events fire in the order they were scheduled.
class EventQueue {
public:
    using Handler = std::function<void()>;

    EventQueue() = default;
    explicit EventQueue(SimTime start) : now_(start) {}

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /// Current simulated time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedules `handler` to run at absolute time `at`.  Scheduling in the
    /// past (before `now()`) is a programming error.
    EventId schedule_at(SimTime at, Handler handler);

    /// Schedules `handler` to run `delay` after the current time.
    EventId schedule_after(SimTime delay, Handler handler);

    /// Cancels a pending event.  Returns false if the event already fired,
    /// was already cancelled, or never existed.
    bool cancel(EventId id);

    /// Runs the earliest pending event.  Returns false when the queue is
    /// empty (time does not advance in that case).
    bool step();

    /// Runs every event scheduled strictly before or at `until`, then
    /// advances the clock to `until`.  Returns the number of events run.
    std::size_t run_until(SimTime until);

    /// Runs events until the queue drains or `max_events` have run.
    /// Returns the number of events run.
    std::size_t run_all(std::size_t max_events = kDefaultEventBudget);

    /// Number of pending (non-cancelled) events.
    [[nodiscard]] std::size_t pending() const noexcept { return pending_ids_.size(); }

    [[nodiscard]] bool empty() const noexcept { return pending_ids_.empty(); }

    /// Total events executed since construction (diagnostics).
    [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

    /// Default safety budget for run_all(); generous enough for every
    /// experiment in this repository, small enough to catch runaway loops.
    static constexpr std::size_t kDefaultEventBudget = 500'000'000;

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq;  // FIFO tie-break + cancellation key
        Handler handler;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    // Pops cancelled entries off the top; returns false when drained.
    bool skip_cancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> pending_ids_;
    SimTime now_{0};
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
};

}  // namespace nbmg::sim
