// Deterministic discrete-event queue for the NB-IoT cell simulator.
//
// Events scheduled for the same instant run in insertion order (FIFO
// tie-breaking), which makes every simulation bit-reproducible for a given
// seed.  Events are cancellable in O(1): handlers live in a slab of reusable
// slots addressed by {index, generation}, and a cancelled slot is simply
// freed (its heap entry is skipped lazily when popped, recognized by a
// stale sequence number).
//
// Handlers are stored with small-buffer optimization: callables up to
// InlineHandler::kInlineCapacity bytes (every lambda the simulator
// schedules) live inline in the slot; larger ones fall back to one heap
// allocation.  The ordering heap itself holds only 24-byte {time, seq,
// slot} entries, so sift operations never touch handler storage.
//
// Large pre-known schedules (a campaign's plan events, a stratum's
// wakeups) can be inserted as one sorted block via Batch/schedule_batch:
// the block becomes a "run lane" consumed front-to-back and merged with
// the heap on the same (time, seq) total order, so firing order is
// exactly what the equivalent sequence of schedule_at calls would
// produce — at one stable sort per block instead of N heap sifts.
#pragma once

#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/small_function.hpp"

namespace nbmg::sim {

/// Simulated time.  One subframe of the NB-IoT air interface is 1 ms, so
/// millisecond resolution captures everything the model needs.
using SimTime = std::chrono::milliseconds;

/// Identifies a scheduled event so it can be cancelled before it fires.
/// `index` addresses a slab slot; `generation` distinguishes successive
/// occupants of the same slot, so a stale id can never cancel a newer
/// event that happens to reuse its storage.
struct EventId {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;

    friend bool operator==(EventId, EventId) = default;
};

/// Type-erased `void()` callable with inline storage for small targets.
/// Move-only; empty by default.  Targets larger than kInlineCapacity (or
/// over-aligned, or with a throwing move) are stored through one heap
/// allocation instead.
using InlineHandler = SmallFunction<void(), 48>;

/// Priority queue of timed events with a simulated clock.
///
/// Invariants:
///  - `now()` never decreases;
///  - events never fire earlier than their scheduled time;
///  - equal-time events fire in the order they were scheduled.
class EventQueue {
public:
    using Handler = InlineHandler;

    EventQueue() = default;
    explicit EventQueue(SimTime start) : now_(start) {}

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /// Current simulated time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedules `handler` to run at absolute time `at`.  Scheduling in the
    /// past (before `now()`) is a programming error.
    EventId schedule_at(SimTime at, Handler handler);

    /// Schedules `handler` to run `delay` after the current time.
    EventId schedule_after(SimTime delay, Handler handler);

    /// Order-preserving builder for schedule_batch(): accumulate timed
    /// handlers, then insert them all as one pre-sorted block.
    class Batch {
    public:
        /// Appends a handler to fire at absolute time `at` (validated
        /// against now() when the batch is scheduled, not here).
        void add(SimTime at, Handler handler);
        void reserve(std::size_t n) { items_.reserve(n); }
        [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
        [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

    private:
        friend class EventQueue;
        struct Item {
            SimTime at;
            Handler handler;
        };
        std::vector<Item> items_;
    };

    /// Schedules every item of `batch` as one sorted run lane: one stable
    /// sort over the block plus O(1) per event at pop time, instead of N
    /// heap sifts.  Firing order is exactly what the equivalent sequence
    /// of schedule_at calls (in add order) would produce — lanes and the
    /// heap merge on the same (time, seq) total order, and sequence
    /// numbers are assigned so equal-time batch events keep their add
    /// order.  Any item before now() is a programming error.  Consumes
    /// the batch; returns the number of events scheduled.
    std::size_t schedule_batch(Batch&& batch);

    /// Cancels a pending event in O(1).  Returns false if the event already
    /// fired, was already cancelled, or never existed.
    bool cancel(EventId id);

    /// Runs the earliest pending event.  Returns false when the queue is
    /// empty (time does not advance in that case).
    bool step();

    /// Runs every event scheduled strictly before or at `until`, then
    /// advances the clock to `until`.  Returns the number of events run.
    std::size_t run_until(SimTime until);

    /// Runs events until the queue drains or `max_events` have run.
    /// Returns the number of events run.
    std::size_t run_all(std::size_t max_events = kDefaultEventBudget);

    /// One live pending event as reported by pending_events().
    struct PendingEvent {
        EventId id;
        SimTime at{0};
        std::uint64_t seq = 0;  // global scheduling order (FIFO tie-break)

        friend bool operator==(const PendingEvent&, const PendingEvent&) = default;
    };

    /// Snapshot of every live (non-cancelled) event in deterministic slab
    /// order: ascending slot index, each live slot exactly once.  The order
    /// depends only on the scheduling history, never on heap shape or lane
    /// compaction, so two queues built by the same call sequence report
    /// identical snapshots.  O(pending log pending) — introspection and
    /// serialization only, not for the hot loop.
    [[nodiscard]] std::vector<PendingEvent> pending_events() const;

    /// Number of pending (non-cancelled) events.
    [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

    [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }

    /// Total events executed since construction (diagnostics).
    [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

    /// Default safety budget for run_all(); generous enough for every
    /// experiment in this repository, small enough to catch runaway loops.
    static constexpr std::size_t kDefaultEventBudget = 500'000'000;

private:
    /// One slab cell.  `seq == 0` marks the slot free; a live slot keeps
    /// the globally unique sequence number of its occupant, which the heap
    /// entry must match to be considered live.
    struct Slot {
        Handler handler;
        std::uint64_t seq = 0;
        std::uint32_t generation = 0;
    };
    /// Heap entries carry no handler: 24 bytes, moved freely during sifts.
    struct HeapEntry {
        SimTime at;
        std::uint64_t seq = 0;  // FIFO tie-break + staleness check
        std::uint32_t slot = 0;
    };

    /// 4-ary min-heap on (at, seq).  The comparator is a total order (seq
    /// is unique), so the pop sequence is independent of heap shape or
    /// arity — switching from the binary std::priority_queue changes only
    /// the constant factor (half the levels, cache-friendlier sifts), not
    /// the order in which events fire.
    class EventHeap {
    public:
        [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
        [[nodiscard]] const HeapEntry& top() const noexcept { return v_.front(); }
        /// Raw entry storage (heap order, may contain stale entries) for
        /// pending_events()'s slab-order walk.
        [[nodiscard]] const std::vector<HeapEntry>& entries() const noexcept {
            return v_;
        }
        void push(const HeapEntry& e);
        void pop();

    private:
        static constexpr std::size_t kArity = 4;
        static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
            if (a.at != b.at) return a.at < b.at;
            return a.seq < b.seq;
        }

        std::vector<HeapEntry> v_;
    };

    /// One schedule_batch block: entries sorted by (at, seq), consumed
    /// front-to-back through `cursor`; exhausted lanes are dropped by
    /// find_best().
    struct Run {
        std::vector<HeapEntry> entries;
        std::size_t cursor = 0;
    };

    // Source tags for find_best().
    static constexpr int kSourceNone = -2;
    static constexpr int kSourceHeap = -1;

    [[nodiscard]] std::uint32_t acquire_slot();
    void release_slot(std::uint32_t index) noexcept;

    // Pops entries whose slot was cancelled/reused off the top; returns
    // false when drained.
    bool skip_stale();

    /// Skips stale entries on the heap and every run lane, compacts away
    /// exhausted lanes, and returns where the globally earliest live
    /// event sits: kSourceHeap, a lane index, or kSourceNone when
    /// drained.
    int find_best();

    EventHeap heap_;
    std::vector<Run> runs_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    SimTime now_{0};
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
};

}  // namespace nbmg::sim
