// Simulation context: event queue + per-entity random streams + trace hook.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace nbmg::sim {

/// Severity-free trace record emitted by simulation entities; benches and
/// tests can subscribe to observe protocol behaviour without coupling the
/// model to any logging framework.
struct TraceEvent {
    SimTime at;
    std::string_view source;  // e.g. "ue", "enb", "rach"
    std::string message;
};

/// Owns the event queue and RNG factory for one simulation run.
class Simulation {
public:
    using TraceSink = std::function<void(const TraceEvent&)>;

    explicit Simulation(std::uint64_t seed) : rng_(seed) {}

    [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
    [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }
    [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }

    [[nodiscard]] RandomStream stream(std::string_view label, std::uint64_t index = 0) const {
        return rng_.stream(label, index);
    }
    [[nodiscard]] std::uint64_t seed() const noexcept { return rng_.root_seed(); }

    void set_trace_sink(TraceSink sink) { trace_ = std::move(sink); }

    void trace(std::string_view source, std::string message) const {
        if (trace_) trace_(TraceEvent{queue_.now(), source, std::move(message)});
    }

    [[nodiscard]] bool tracing() const noexcept { return static_cast<bool>(trace_); }

private:
    EventQueue queue_;
    RngFactory rng_;
    TraceSink trace_;
};

}  // namespace nbmg::sim
