// Simulation context: event queue + per-entity random streams + telemetry
// hook.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace nbmg::telemetry {
class CampaignSink;
}  // namespace nbmg::telemetry

namespace nbmg::sim {

/// Owns the event queue and RNG factory for one simulation run.
///
/// Observability: entities emit typed telemetry::TraceRecords through the
/// attached CampaignSink (telemetry/sink.hpp) via NBMG_TELEMETRY_EMIT.
/// The old string TraceEvent hook is gone — its string_view `source`
/// member dangled on any sink that deferred processing; the typed records
/// carry an interned EventKind id and integer payloads, so they own
/// everything they reference.  The sink is not owned and may be null
/// (telemetry disabled, the default); emission is then a no-op that never
/// evaluates its arguments.
class Simulation {
public:
    explicit Simulation(std::uint64_t seed) : rng_(seed) {}

    [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
    [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }
    [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }

    [[nodiscard]] RandomStream stream(std::string_view label, std::uint64_t index = 0) const {
        return rng_.stream(label, index);
    }
    [[nodiscard]] std::uint64_t seed() const noexcept { return rng_.root_seed(); }

    void set_telemetry(telemetry::CampaignSink* sink) noexcept { telemetry_ = sink; }
    [[nodiscard]] telemetry::CampaignSink* telemetry() const noexcept {
        return telemetry_;
    }

private:
    EventQueue queue_;
    RngFactory rng_;
    telemetry::CampaignSink* telemetry_ = nullptr;  // not owned
};

}  // namespace nbmg::sim
