#include "sim/event_queue.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace nbmg::sim {

void EventQueue::EventHeap::push(const HeapEntry& e) {
    // Hole insertion: move ancestors down into the hole and place the new
    // entry once, instead of swapping at every level.
    std::size_t i = v_.size();
    v_.push_back(e);
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!before(e, v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
    }
    v_[i] = e;
}

void EventQueue::EventHeap::pop() {
    const HeapEntry last = v_.back();
    v_.pop_back();
    if (v_.empty()) return;
    // Sift the former last element down from the root.
    std::size_t i = 0;
    const std::size_t n = v_.size();
    for (;;) {
        const std::size_t first_child = i * kArity + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end = std::min(first_child + kArity, n);
        for (std::size_t c = first_child + 1; c < end; ++c) {
            if (before(v_[c], v_[best])) best = c;
        }
        if (!before(v_[best], last)) break;
        v_[i] = v_[best];
        i = best;
    }
    v_[i] = last;
}

std::uint32_t EventQueue::acquire_slot() {
    if (!free_slots_.empty()) {
        const std::uint32_t index = free_slots_.back();
        free_slots_.pop_back();
        return index;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) noexcept {
    Slot& slot = slots_[index];
    slot.handler.reset();
    slot.seq = 0;
    free_slots_.push_back(index);
    --pending_;
}

EventId EventQueue::schedule_at(SimTime at, Handler handler) {
    if (at < now_) {
        throw std::logic_error("EventQueue::schedule_at: time in the past");
    }
    if (!handler) {
        throw std::invalid_argument("EventQueue::schedule_at: empty handler");
    }
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t index = acquire_slot();
    Slot& slot = slots_[index];
    slot.handler = std::move(handler);
    slot.seq = seq;
    ++slot.generation;  // live ids always have generation >= 1
    ++pending_;
    heap_.push(HeapEntry{at, seq, index});
    return EventId{index, slot.generation};
}

EventId EventQueue::schedule_after(SimTime delay, Handler handler) {
    if (delay < SimTime{0}) {
        throw std::logic_error("EventQueue::schedule_after: negative delay");
    }
    return schedule_at(now_ + delay, std::move(handler));
}

void EventQueue::Batch::add(SimTime at, Handler handler) {
    if (!handler) {
        throw std::invalid_argument("EventQueue::Batch::add: empty handler");
    }
    items_.push_back(Item{at, std::move(handler)});
}

std::size_t EventQueue::schedule_batch(Batch&& batch) {
    std::vector<Batch::Item>& items = batch.items_;
    if (items.empty()) return 0;
    for (const Batch::Item& item : items) {
        if (item.at < now_) {
            throw std::logic_error("EventQueue::schedule_batch: time in the past");
        }
    }
    // Stable sort keeps add order inside equal-time groups; assigning
    // sequence numbers along the sorted order then makes seq ascend with
    // add order within each group — the exact tie-break schedule_at would
    // have produced.
    std::vector<std::uint32_t> order(items.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&items](std::uint32_t a, std::uint32_t b) {
                         return items[a].at < items[b].at;
                     });
    Run run;
    run.entries.reserve(items.size());
    for (const std::uint32_t i : order) {
        const std::uint64_t seq = next_seq_++;
        const std::uint32_t index = acquire_slot();
        Slot& slot = slots_[index];
        slot.handler = std::move(items[i].handler);
        slot.seq = seq;
        ++slot.generation;
        ++pending_;
        run.entries.push_back(HeapEntry{items[i].at, seq, index});
    }
    const std::size_t scheduled = run.entries.size();
    runs_.push_back(std::move(run));
    items.clear();
    return scheduled;
}

bool EventQueue::cancel(EventId id) {
    // Ids of events that already fired point at a freed (seq == 0) or
    // reused (generation bumped) slot, so a stale cancel is a no-op.
    if (id.index >= slots_.size()) return false;
    Slot& slot = slots_[id.index];
    if (slot.seq == 0 || slot.generation != id.generation) return false;
    release_slot(id.index);  // the heap entry goes stale and is skipped later
    return true;
}

bool EventQueue::skip_stale() {
    while (!heap_.empty()) {
        const HeapEntry& top = heap_.top();
        if (slots_[top.slot].seq == top.seq) return true;
        heap_.pop();
    }
    return false;
}

int EventQueue::find_best() {
    const HeapEntry* best = nullptr;
    int src = kSourceNone;
    if (skip_stale()) {
        best = &heap_.top();
        src = kSourceHeap;
    }
    std::size_t kept = 0;
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        Run& run = runs_[r];
        while (run.cursor < run.entries.size()) {
            const HeapEntry& head = run.entries[run.cursor];
            if (slots_[head.slot].seq == head.seq) break;
            ++run.cursor;  // cancelled or reused: skip lazily, like the heap
        }
        if (run.cursor == run.entries.size()) continue;  // exhausted: drop
        const HeapEntry& head = run.entries[run.cursor];
        if (best == nullptr || head.at < best->at ||
            (head.at == best->at && head.seq < best->seq)) {
            best = &head;
            src = static_cast<int>(kept);
        }
        // Compaction moves the Run object, not its entries buffer, so
        // `best` stays valid.
        if (kept != r) runs_[kept] = std::move(runs_[r]);
        ++kept;
    }
    runs_.resize(kept);
    return src;
}

std::vector<EventQueue::PendingEvent> EventQueue::pending_events() const {
    std::vector<PendingEvent> live;
    live.reserve(pending_);
    // Each live slot has exactly one matching entry across the heap and the
    // run lanes (sequence numbers are globally unique and never reused), so
    // collecting seq-matching entries visits every pending event once.
    const auto collect = [&](const HeapEntry& e) {
        const Slot& slot = slots_[e.slot];
        if (slot.seq != e.seq) return;  // cancelled or reused: stale entry
        live.push_back(PendingEvent{EventId{e.slot, slot.generation}, e.at, e.seq});
    };
    for (const HeapEntry& e : heap_.entries()) collect(e);
    for (const Run& run : runs_) {
        for (std::size_t i = run.cursor; i < run.entries.size(); ++i) {
            collect(run.entries[i]);
        }
    }
    std::sort(live.begin(), live.end(),
              [](const PendingEvent& a, const PendingEvent& b) {
                  return a.id.index < b.id.index;
              });
    assert(live.size() == pending_);
    return live;
}

bool EventQueue::step() {
    const int src = find_best();
    if (src == kSourceNone) return false;
    HeapEntry top;
    if (src == kSourceHeap) {
        top = heap_.top();
        heap_.pop();
    } else {
        Run& run = runs_[static_cast<std::size_t>(src)];
        top = run.entries[run.cursor++];
    }
    // Move the handler out before running it: the handler may schedule new
    // events, which can reuse this slot or grow the slab.
    Handler handler = std::move(slots_[top.slot].handler);
    release_slot(top.slot);
    now_ = top.at;
    ++executed_;
    handler();
    return true;
}

std::size_t EventQueue::run_until(SimTime until) {
    std::size_t n = 0;
    for (;;) {
        const int src = find_best();
        if (src == kSourceNone) break;
        const HeapEntry& head =
            src == kSourceHeap
                ? heap_.top()
                : runs_[static_cast<std::size_t>(src)]
                      .entries[runs_[static_cast<std::size_t>(src)].cursor];
        if (head.at > until) break;
        step();
        ++n;
    }
    if (now_ < until) now_ = until;
    return n;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
}

}  // namespace nbmg::sim
