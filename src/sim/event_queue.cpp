#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace nbmg::sim {

EventId EventQueue::schedule_at(SimTime at, Handler handler) {
    if (at < now_) {
        throw std::logic_error("EventQueue::schedule_at: time in the past");
    }
    if (!handler) {
        throw std::invalid_argument("EventQueue::schedule_at: empty handler");
    }
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{at, seq, std::move(handler)});
    pending_ids_.insert(seq);
    return EventId{seq};
}

EventId EventQueue::schedule_after(SimTime delay, Handler handler) {
    if (delay < SimTime{0}) {
        throw std::logic_error("EventQueue::schedule_after: negative delay");
    }
    return schedule_at(now_ + delay, std::move(handler));
}

bool EventQueue::cancel(EventId id) {
    // Ids of events that already fired were removed from pending_ids_, so a
    // stale cancel is a harmless no-op.
    return pending_ids_.erase(id.value) > 0;
}

bool EventQueue::skip_cancelled() {
    while (!heap_.empty()) {
        if (pending_ids_.contains(heap_.top().seq)) return true;
        heap_.pop();
    }
    return false;
}

bool EventQueue::step() {
    if (!skip_cancelled()) return false;
    // Copy the entry out before running it: the handler may schedule new
    // events, which can reallocate the heap's storage.
    Entry top = heap_.top();
    heap_.pop();
    pending_ids_.erase(top.seq);
    now_ = top.at;
    ++executed_;
    top.handler();
    return true;
}

std::size_t EventQueue::run_until(SimTime until) {
    std::size_t n = 0;
    while (skip_cancelled() && heap_.top().at <= until) {
        step();
        ++n;
    }
    if (now_ < until) now_ = until;
    return n;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
}

}  // namespace nbmg::sim
