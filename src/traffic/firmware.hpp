// Multicast payload presets.  The paper evaluates firmware images of
// 100 KB, 1 MB and 10 MB, "covering the spectrum of typical firmware
// updates".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nbmg::traffic {

struct PayloadSpec {
    std::string name;
    std::int64_t bytes = 0;

    [[nodiscard]] double megabytes() const noexcept {
        return static_cast<double>(bytes) / (1024.0 * 1024.0);
    }
};

[[nodiscard]] inline PayloadSpec firmware_100kb() {
    return PayloadSpec{"100KB", 100 * 1024};
}
[[nodiscard]] inline PayloadSpec firmware_1mb() {
    return PayloadSpec{"1MB", 1024 * 1024};
}
[[nodiscard]] inline PayloadSpec firmware_10mb() {
    return PayloadSpec{"10MB", 10 * 1024 * 1024};
}

/// The three sizes from the paper's evaluation (Sec. IV-A).
[[nodiscard]] inline std::vector<PayloadSpec> paper_payloads() {
    return {firmware_100kb(), firmware_1mb(), firmware_10mb()};
}

}  // namespace nbmg::traffic
