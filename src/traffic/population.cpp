#include "traffic/population.hpp"

#include <algorithm>
#include <stdexcept>
// nbmg-lint: allow(unordered-iter) uniqueness filter only; audited below
#include <unordered_set>

namespace nbmg::traffic {

using nbiot::DrxCycle;

bool PopulationProfile::valid() const noexcept {
    if (classes.empty() || batch_mean < 1.0) return false;
    double total_share = 0.0;
    for (const auto& c : classes) {
        if (c.share <= 0.0 || c.cycle_weights.empty()) return false;
        double total_cycle = 0.0;
        for (const auto& [cycle, w] : c.cycle_weights) {
            if (w < 0.0) return false;
            total_cycle += w;
        }
        if (total_cycle <= 0.0) return false;
        const double total_ce = c.ce_weights[0] + c.ce_weights[1] + c.ce_weights[2];
        if (total_ce <= 0.0) return false;
        total_share += c.share;
    }
    return total_share > 0.0;
}

std::vector<GeneratedDevice> generate_population(const PopulationProfile& profile,
                                                 std::size_t count,
                                                 sim::RandomStream& rng) {
    if (!profile.valid()) {
        throw std::invalid_argument("generate_population: invalid profile");
    }

    std::vector<double> shares;
    shares.reserve(profile.classes.size());
    for (const auto& c : profile.classes) shares.push_back(c.share);

    // Audited 2026-08 (PR 6): `used_imsis` is a pure uniqueness filter —
    // the only operations below are contains() and insert(); it is never
    // iterated, so its (implementation-defined) order cannot reach device
    // order, RNG draw order, or any output.  Device order is the
    // deterministic `devices.push_back` sequence driven solely by the
    // RandomStream.  Keep it hashed: the IMSI key space is 15-digit
    // sparse, an ordered set would cost log n per probe for nothing.
    // nbmg-lint: allow(unordered-iter) contains/insert only, never iterated
    std::unordered_set<std::uint64_t> used_imsis;
    used_imsis.reserve(count * 2);

    std::vector<GeneratedDevice> devices;
    devices.reserve(count);
    while (devices.size() < count) {
        // One deployment batch: a block of consecutive IMSIs sharing class,
        // cycle and coverage (fleet provisioning; see PopulationProfile).
        const std::size_t class_index = rng.weighted_index(shares);
        const DeviceClassSpec& cls = profile.classes[class_index];

        std::vector<double> cycle_w;
        cycle_w.reserve(cls.cycle_weights.size());
        for (const auto& [cycle, w] : cls.cycle_weights) cycle_w.push_back(w);
        const DrxCycle cycle = cls.cycle_weights[rng.weighted_index(cycle_w)].first;

        const auto ce = static_cast<nbiot::CeLevel>(rng.weighted_index(
            std::span<const double>{cls.ce_weights.data(), cls.ce_weights.size()}));

        std::size_t batch = 1;
        if (profile.batch_mean > 1.0) {
            batch += static_cast<std::size_t>(rng.geometric(1.0 / profile.batch_mean));
        }
        batch = std::min(batch, count - devices.size());

        // Base of a block of `batch` consecutive unused 15-digit IMSIs.
        std::uint64_t base = 0;
        bool free_block = false;
        while (!free_block) {
            base = static_cast<std::uint64_t>(
                rng.uniform_int(100'000'000'000'000, 999'999'999'999'000));
            free_block = true;
            for (std::size_t k = 0; k < batch; ++k) {
                if (used_imsis.contains(base + k)) {
                    free_block = false;
                    break;
                }
            }
        }

        for (std::size_t k = 0; k < batch; ++k) {
            used_imsis.insert(base + k);
            GeneratedDevice d;
            d.spec = nbiot::UeSpec{
                nbiot::DeviceId{static_cast<std::uint32_t>(devices.size())},
                nbiot::Imsi{base + k}, cycle, ce};
            d.class_index = class_index;
            devices.push_back(d);
        }
    }
    return devices;
}

DrxCycle max_cycle(const std::vector<GeneratedDevice>& devices) {
    if (devices.empty()) throw std::invalid_argument("max_cycle: empty population");
    DrxCycle best = devices.front().spec.cycle;
    for (const auto& d : devices) best = std::max(best, d.spec.cycle);
    return best;
}

std::vector<nbiot::UeSpec> to_specs(const std::vector<GeneratedDevice>& devices) {
    std::vector<nbiot::UeSpec> specs;
    specs.reserve(devices.size());
    for (const auto& d : devices) specs.push_back(d.spec);
    return specs;
}

namespace {

DeviceClassSpec make_class(std::string name, double share,
                           std::vector<std::pair<DrxCycle, double>> cycles) {
    DeviceClassSpec cls;
    cls.name = std::move(name);
    cls.share = share;
    cls.cycle_weights = std::move(cycles);
    return cls;
}

}  // namespace

PopulationProfile massive_iot_city() {
    using namespace nbiot::drx;
    PopulationProfile p;
    p.name = "massive_iot_city";
    // Ericsson "Massive IoT in the City" narrative: a tiny population of
    // latency-sensitive alarms on short DRX, trackers and wearables on
    // shorter eDRX, and a dominating mass of meters and environmental /
    // infrastructure sensors on the longest eDRX cycles (10-year battery
    // targets).  Deployment-batch mean and shares calibrated so DR-SC's
    // transmissions/devices ratio reproduces Fig. 7's shape (~0.5 at
    // n = 100 falling to ~0.4 around n = 700-1000 with TI = 10 s); see
    // EXPERIMENTS.md for the calibration analysis.
    p.batch_mean = 1.6;
    p.classes = {
        make_class("alarm_panic", 0.01, {{seconds_2_56(), 1.0}}),
        make_class("asset_tracking", 0.04,
                   {{seconds_20_48(), 0.5}, {seconds_81_92(), 0.5}}),
        make_class("wearables", 0.05,
                   {{seconds_163_84(), 0.5}, {seconds_327_68(), 0.5}}),
        make_class("smart_metering", 0.30,
                   {{seconds_5242_88(), 0.3}, {seconds_10485_76(), 0.7}}),
        make_class("environmental", 0.25, {{seconds_10485_76(), 1.0}}),
        make_class("infrastructure", 0.35,
                   {{seconds_5242_88(), 0.2}, {seconds_10485_76(), 0.8}}),
    };
    return p;
}

PopulationProfile alarm_heavy() {
    using namespace nbiot::drx;
    PopulationProfile p;
    p.name = "alarm_heavy";
    p.classes = {
        make_class("alarm_panic", 0.50, {{seconds_1_28(), 0.3}, {seconds_2_56(), 0.7}}),
        make_class("asset_tracking", 0.30, {{seconds_20_48(), 0.5}, {seconds_40_96(), 0.5}}),
        make_class("smart_metering", 0.20,
                   {{seconds_327_68(), 0.5}, {seconds_655_36(), 0.5}}),
    };
    return p;
}

PopulationProfile meter_heavy() {
    using namespace nbiot::drx;
    PopulationProfile p;
    p.name = "meter_heavy";
    p.classes = {
        make_class("smart_metering", 0.60,
                   {{seconds_655_36(), 0.3},
                    {seconds_1310_72(), 0.4},
                    {seconds_2621_44(), 0.3}}),
        make_class("environmental", 0.40,
                   {{seconds_2621_44(), 0.4},
                    {seconds_5242_88(), 0.4},
                    {seconds_10485_76(), 0.2}}),
    };
    return p;
}

PopulationProfile uniform_edrx() {
    using namespace nbiot::drx;
    PopulationProfile p;
    p.name = "uniform_edrx";
    DeviceClassSpec cls;
    cls.name = "uniform";
    cls.share = 1.0;
    for (const DrxCycle cycle : nbiot::drx_ladder()) {
        if (cycle.is_nbiot_edrx()) cls.cycle_weights.emplace_back(cycle, 1.0);
    }
    p.classes = {cls};
    return p;
}

PopulationProfile mixed_coverage_city() {
    PopulationProfile p = massive_iot_city();
    p.name = "mixed_coverage_city";
    for (auto& cls : p.classes) {
        cls.ce_weights = {0.85, 0.12, 0.03};  // typical basement/deep-indoor tail
    }
    return p;
}

const std::vector<PopulationProfile>& builtin_profiles() {
    static const std::vector<PopulationProfile> profiles = {
        massive_iot_city(), alarm_heavy(), meter_heavy(), uniform_edrx(),
        mixed_coverage_city()};
    return profiles;
}

}  // namespace nbmg::traffic
