// Device population generation.
//
// The paper evaluates "realistic NB-IoT traffic patterns" based on the
// Ericsson "Massive IoT in the City" mix: many device categories (alarms,
// trackers, meters, environmental sensors, infrastructure) with DRX/eDRX
// cycles spanning the whole ladder.  The raw Ericsson data is not public;
// what the experiments actually need is the induced heterogeneous cycle
// distribution, which this module generates from named, parameterized
// profiles (see DESIGN.md, substitution table).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nbiot/cell.hpp"
#include "nbiot/drx.hpp"
#include "sim/random.hpp"

namespace nbmg::traffic {

/// One device category of a profile.
struct DeviceClassSpec {
    std::string name;
    double share = 0.0;  // fraction of the population (normalized across classes)
    /// DRX cycle choices with relative weights.
    std::vector<std::pair<nbiot::DrxCycle, double>> cycle_weights;
    /// CE-level mix (CE0, CE1, CE2); defaults to normal coverage only.
    std::array<double, 3> ce_weights{1.0, 0.0, 0.0};

    friend bool operator==(const DeviceClassSpec&, const DeviceClassSpec&) = default;
};

struct PopulationProfile {
    std::string name;
    std::vector<DeviceClassSpec> classes;
    /// Mean deployment-batch size (>= 1).  Operators provision device
    /// fleets in blocks of consecutive IMSIs; devices of one batch share a
    /// class and DRX cycle, so their paging occasions fall within a few
    /// frames of each other.  Batch sizes are 1 + Geometric.  1.0 disables
    /// batching (fully i.i.d. IMSIs).
    double batch_mean = 1.0;

    [[nodiscard]] bool valid() const noexcept;

    friend bool operator==(const PopulationProfile&, const PopulationProfile&) = default;
};

/// A generated device: its network-visible spec plus the class it came from.
struct GeneratedDevice {
    nbiot::UeSpec spec;
    std::size_t class_index = 0;
};

/// Draws `count` devices from `profile`.  IMSIs are unique, uniformly
/// random 15-digit values, which is what spreads paging occasions across
/// each cycle.  Device ids are dense 0..count-1.
[[nodiscard]] std::vector<GeneratedDevice> generate_population(
    const PopulationProfile& profile, std::size_t count, sim::RandomStream& rng);

/// Longest DRX cycle present in a population (defines the planning horizon).
[[nodiscard]] nbiot::DrxCycle max_cycle(const std::vector<GeneratedDevice>& devices);

/// Converts to the plain UeSpec list used by planners and the cell.
[[nodiscard]] std::vector<nbiot::UeSpec> to_specs(
    const std::vector<GeneratedDevice>& devices);

/// --- built-in profiles ---

/// The default evaluation mix (calibrated so the DR-SC transmission curve
/// reproduces the paper's Fig. 7 shape; see EXPERIMENTS.md).
[[nodiscard]] PopulationProfile massive_iot_city();

/// Sensitivity-analysis profiles (ablation A3).
[[nodiscard]] PopulationProfile alarm_heavy();   // short cycles dominate
[[nodiscard]] PopulationProfile meter_heavy();   // long eDRX dominates
[[nodiscard]] PopulationProfile uniform_edrx();  // uniform over NB-IoT eDRX ladder

/// Profile with a CE-level mix (for the coverage ablation).
[[nodiscard]] PopulationProfile mixed_coverage_city();

[[nodiscard]] const std::vector<PopulationProfile>& builtin_profiles();

}  // namespace nbmg::traffic
