// Slotted NPRACH contention model.
//
// Random access opportunities repeat every `window_period` (NPRACH
// periodicity).  Each requester picks one of `num_preambles` subcarriers
// uniformly at random; a preamble chosen by exactly one requester succeeds,
// otherwise everyone on that preamble collides, backs off uniformly in
// [0, backoff_max] and retries.  Collision is detected only after the full
// msg1-msg4 exchange (contention resolution), which is what costs energy.
//
// The model is deliberately at the abstraction level the paper uses: it
// produces per-device RA latency and active (powered-up) time, including
// the effect of many devices doing RA inside the same TI window.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "nbiot/types.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/small_function.hpp"

namespace nbmg::nbiot {

struct RachConfig {
    SimTime window_period{160};    // NPRACH periodicity
    int num_preambles = 48;        // NPRACH subcarriers usable for contention
    int max_attempts = 10;         // preambleTransMax
    SimTime backoff_max{960};      // uniform backoff upper bound after collision
    SimTime preamble_duration{6};  // NPRACH format 1, ~5.6 ms
    SimTime rar_delay{40};         // RAR window
    SimTime msg3_delay{40};        // RRC request transmission + processing
    SimTime msg4_delay{50};        // contention resolution

    /// Active air-interface time of one full attempt (success or collision).
    [[nodiscard]] SimTime attempt_active_time() const noexcept {
        return preamble_duration + rar_delay + msg3_delay + msg4_delay;
    }

    [[nodiscard]] bool valid() const noexcept {
        return window_period.count() > 0 && num_preambles > 0 && max_attempts > 0;
    }

    friend bool operator==(const RachConfig&, const RachConfig&) = default;
};

struct RachOutcome {
    bool success = false;
    SimTime completed_at{0};  // time of contention resolution (or final failure)
    int attempts = 0;
    SimTime active_time{0};  // total powered-up time across attempts
};

/// Shared random-access channel of the cell.
class RachChannel {
public:
    // Small-buffer callable: the UE's completion closure (a `this` plus a
    // nested continuation) stays inline, so a RA request never allocates.
    using Callback = sim::SmallFunction<void(const RachOutcome&), 48>;

    RachChannel(sim::Simulation& simulation, RachConfig config, sim::RandomStream rng);

    /// Starts a random-access procedure no earlier than `earliest`.
    /// `done` fires exactly once, at msg4 time on success or after the
    /// final failed attempt.
    void request(SimTime earliest, Callback done);

    /// Adds background RA load: `arrivals_per_second` Poisson arrivals until
    /// `until`.  Background attempts occupy preambles but report to no one.
    void inject_background_load(double arrivals_per_second, SimTime until);

    /// Diagnostics.
    [[nodiscard]] std::uint64_t total_attempts() const noexcept { return total_attempts_; }
    [[nodiscard]] std::uint64_t total_collisions() const noexcept { return total_collisions_; }
    [[nodiscard]] std::uint64_t total_failures() const noexcept { return total_failures_; }

    [[nodiscard]] const RachConfig& config() const noexcept { return config_; }

private:
    struct Procedure {
        Callback done;
        int attempts = 0;
        SimTime active_time{0};
        bool background = false;
    };

    /// First window start at or after `t`.
    [[nodiscard]] SimTime next_window_at_or_after(SimTime t) const noexcept;

    void enroll(SimTime earliest, std::size_t proc_index);
    void resolve_window(SimTime window_start);

    sim::Simulation* sim_;  // not owned
    RachConfig config_;
    sim::RandomStream rng_;
    std::vector<Procedure> procedures_;
    std::map<SimTime, std::vector<std::size_t>> window_entrants_;
    std::map<SimTime, bool> window_scheduled_;
    std::uint64_t total_attempts_ = 0;
    std::uint64_t total_collisions_ = 0;
    std::uint64_t total_failures_ = 0;
};

}  // namespace nbmg::nbiot
