// eNB-side paging planner.
//
// Every paging occasion can carry at most `max_page_records` entries
// (PagingRecordList limit, default 16).  Grouping planners enqueue page
// requests here; when a PO is full the request is deferred to the device's
// next PO.  The scheduler also collects the resulting per-occasion paging
// messages so the campaign runner can replay them and account for paging
// bytes on the air interface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "nbiot/paging.hpp"

namespace nbmg::telemetry {
class CampaignSink;
}  // namespace nbmg::telemetry

namespace nbmg::nbiot {

class PagingScheduler {
public:
    PagingScheduler(const PagingSchedule& schedule, int max_page_records);

    /// Attaches a telemetry sink (not owned, may be null): every placed
    /// record/extension emits a page_scheduled event at its occasion time.
    void set_telemetry(telemetry::CampaignSink* sink) noexcept { telemetry_ = sink; }

    /// Pages `device` at its first PO at or after `not_before` with room
    /// left, deferring over full occasions.  Gives up once the PO would be
    /// at or past `deadline` and returns nullopt (the caller decides how to
    /// recover).  Returns the PO time actually used.
    std::optional<SimTime> enqueue_record(DeviceId device, Imsi imsi, DrxCycle cycle,
                                          SimTime not_before, SimTime deadline);

    /// Same placement rules, but carries the DR-SI `mltc-Transmission`
    /// extension announcing a multicast at `multicast_at`.
    std::optional<SimTime> enqueue_mltc(DeviceId device, Imsi imsi, DrxCycle cycle,
                                        SimTime not_before, SimTime deadline,
                                        SimTime multicast_at);

    /// Places a record at exactly `po` (which must be a PO of the device);
    /// fails when the occasion is full.  Used for "last PO before X"
    /// placements that must not slip forward.
    bool try_enqueue_record_at(DeviceId device, Imsi imsi, DrxCycle cycle, SimTime po);

    /// Places a record at `po` without checking the TS 36.304 congruence.
    /// Needed for anchored adapted occasions (DA-SC, paper Fig. 5 model),
    /// whose positions are not formula-derived.  Fails when full.
    bool force_enqueue_record_at(DeviceId device, Imsi imsi, SimTime po);

    /// All planned messages in time order.
    [[nodiscard]] std::vector<PagingMessage> messages() const;

    /// Total records + extensions planned so far.
    [[nodiscard]] std::size_t total_entries() const noexcept { return total_entries_; }

    [[nodiscard]] int max_page_records() const noexcept { return max_records_; }

private:
    std::optional<SimTime> find_slot(Imsi imsi, DrxCycle cycle, SimTime not_before,
                                     SimTime deadline) const;

    const PagingSchedule* schedule_;  // not owned; outlives the scheduler
    telemetry::CampaignSink* telemetry_ = nullptr;  // not owned; may be null
    int max_records_ = 0;
    std::map<SimTime, PagingMessage> by_time_;
    std::size_t total_entries_ = 0;
};

}  // namespace nbmg::nbiot
