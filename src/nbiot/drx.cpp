#include "nbiot/drx.hpp"

#include <cstdio>
#include <stdexcept>

namespace nbmg::nbiot {

std::optional<DrxCycle> DrxCycle::from_period(SimTime period) noexcept {
    const std::int64_t ms = period.count();
    if (ms < kShortestMs) return std::nullopt;
    for (int k = 0; k < kLadderSize; ++k) {
        if ((kShortestMs << k) == ms) return DrxCycle{k};
    }
    return std::nullopt;
}

std::optional<DrxCycle> DrxCycle::longest_at_most(SimTime period) noexcept {
    const std::int64_t ms = period.count();
    if (ms < kShortestMs) return std::nullopt;
    int best = 0;
    for (int k = 0; k < kLadderSize; ++k) {
        if ((kShortestMs << k) <= ms) best = k;
    }
    return DrxCycle{best};
}

std::string DrxCycle::to_string() const {
    const double secs = period_seconds();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fs", secs);
    return std::string{buf} + (is_edrx() ? " (eDRX)" : " (DRX)");
}

std::array<DrxCycle, DrxCycle::kLadderSize> drx_ladder() {
    return {
        DrxCycle::from_index(0),  DrxCycle::from_index(1),  DrxCycle::from_index(2),
        DrxCycle::from_index(3),  DrxCycle::from_index(4),  DrxCycle::from_index(5),
        DrxCycle::from_index(6),  DrxCycle::from_index(7),  DrxCycle::from_index(8),
        DrxCycle::from_index(9),  DrxCycle::from_index(10), DrxCycle::from_index(11),
        DrxCycle::from_index(12), DrxCycle::from_index(13), DrxCycle::from_index(14),
        DrxCycle::from_index(15),
    };
}

namespace drx {
DrxCycle seconds_0_32() { return DrxCycle::from_index(0); }
DrxCycle seconds_0_64() { return DrxCycle::from_index(1); }
DrxCycle seconds_1_28() { return DrxCycle::from_index(2); }
DrxCycle seconds_2_56() { return DrxCycle::from_index(3); }
DrxCycle seconds_5_12() { return DrxCycle::from_index(4); }
DrxCycle seconds_10_24() { return DrxCycle::from_index(5); }
DrxCycle seconds_20_48() { return DrxCycle::from_index(6); }
DrxCycle seconds_40_96() { return DrxCycle::from_index(7); }
DrxCycle seconds_81_92() { return DrxCycle::from_index(8); }
DrxCycle seconds_163_84() { return DrxCycle::from_index(9); }
DrxCycle seconds_327_68() { return DrxCycle::from_index(10); }
DrxCycle seconds_655_36() { return DrxCycle::from_index(11); }
DrxCycle seconds_1310_72() { return DrxCycle::from_index(12); }
DrxCycle seconds_2621_44() { return DrxCycle::from_index(13); }
DrxCycle seconds_5242_88() { return DrxCycle::from_index(14); }
DrxCycle seconds_10485_76() { return DrxCycle::from_index(15); }
}  // namespace drx

}  // namespace nbmg::nbiot
