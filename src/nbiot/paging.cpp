#include "nbiot/paging.hpp"

#include <algorithm>
#include <array>

namespace nbmg::nbiot {
namespace {

/// PO subframe lookup (TS 36.304 Table 7.2-1, FDD).
[[nodiscard]] std::int64_t po_subframe(std::int64_t ns, std::int64_t i_s) {
    static constexpr std::array<std::int64_t, 1> kNs1{9};
    static constexpr std::array<std::int64_t, 2> kNs2{4, 9};
    static constexpr std::array<std::int64_t, 4> kNs4{0, 4, 5, 9};
    switch (ns) {
        case 1: return kNs1[static_cast<std::size_t>(i_s)];
        case 2: return kNs2[static_cast<std::size_t>(i_s)];
        case 4: return kNs4[static_cast<std::size_t>(i_s)];
        default: throw std::logic_error("paging: unsupported Ns");
    }
}

/// ceil(a / b) for b > 0 and any sign of a.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
    return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

}  // namespace

PagingSchedule::PagingSchedule(PagingConfig config) : config_(config) {
    if (!config_.valid()) throw std::invalid_argument("PagingSchedule: invalid config");
    const std::int64_t ns = std::max<std::int64_t>(1, config_.nb_num / config_.nb_den);
    if (ns != 1 && ns != 2 && ns != 4) {
        throw std::invalid_argument("PagingSchedule: nB/T must give Ns in {1,2,4}");
    }
}

SimTime PagingSchedule::po_offset(Imsi imsi, DrxCycle cycle) const {
    const std::int64_t t_frames = cycle.period_frames();
    const auto ue_id =
        static_cast<std::int64_t>(imsi.value % config_.ue_id_modulus);

    // nB scaled from T; clamp to at least one paging frame per cycle.
    const std::int64_t nb =
        std::max<std::int64_t>(1, t_frames * config_.nb_num / config_.nb_den);
    const std::int64_t n = std::min(t_frames, nb);
    const std::int64_t ns = std::max<std::int64_t>(1, nb / t_frames);

    const std::int64_t pf_offset = (t_frames / n) * (ue_id % n) % t_frames;
    const std::int64_t i_s = (ue_id / n) % ns;
    const std::int64_t sf = po_subframe(ns, i_s);
    return SimTime{pf_offset * kMillisPerFrame + sf * kMillisPerSubframe};
}

SimTime PagingSchedule::first_po_at_or_after(SimTime t, Imsi imsi, DrxCycle cycle) const {
    const std::int64_t period = cycle.period_ms();
    const std::int64_t offset = po_offset(imsi, cycle).count();
    const std::int64_t tm = t.count();
    if (tm <= offset) return SimTime{offset};
    // Smallest k with offset + k*period >= tm.
    const std::int64_t k = (tm - offset + period - 1) / period;
    return SimTime{offset + k * period};
}

std::optional<SimTime> PagingSchedule::last_po_before(SimTime t, Imsi imsi,
                                                      DrxCycle cycle) const {
    const std::int64_t period = cycle.period_ms();
    const std::int64_t offset = po_offset(imsi, cycle).count();
    const std::int64_t tm = t.count();
    if (tm <= offset) return std::nullopt;
    // Largest k with offset + k*period < tm.
    const std::int64_t k = (tm - offset - 1) / period;
    return SimTime{offset + k * period};
}

std::vector<SimTime> PagingSchedule::pos_in_range(SimTime from, SimTime to, Imsi imsi,
                                                  DrxCycle cycle) const {
    std::vector<SimTime> out;
    if (from >= to) return out;
    const std::int64_t period = cycle.period_ms();
    SimTime po = first_po_at_or_after(from, imsi, cycle);
    while (po < to) {
        out.push_back(po);
        po += SimTime{period};
    }
    return out;
}

bool PagingSchedule::has_po_in_range(SimTime from, SimTime to, Imsi imsi,
                                     DrxCycle cycle) const {
    if (from >= to) return false;
    return first_po_at_or_after(from, imsi, cycle) < to;
}

bool PagingSchedule::is_po(SimTime t, Imsi imsi, DrxCycle cycle) const {
    const std::int64_t period = cycle.period_ms();
    const std::int64_t offset = po_offset(imsi, cycle).count();
    const std::int64_t tm = t.count();
    if (tm < offset) return false;
    return (tm - offset) % period == 0;
}

std::int64_t PagingSchedule::po_count_in_range(SimTime from, SimTime to, Imsi imsi,
                                               DrxCycle cycle) const {
    if (from >= to) return 0;
    const std::int64_t period = cycle.period_ms();
    const std::int64_t offset = po_offset(imsi, cycle).count();
    // POs are offset + k*period for k >= 0; count those in [from, to).
    const std::int64_t lo = std::max<std::int64_t>(0, ceil_div(from.count() - offset, period));
    const std::int64_t hi = ceil_div(to.count() - offset, period);  // first k at or past `to`
    return std::max<std::int64_t>(0, hi - lo);
}

}  // namespace nbmg::nbiot
