#include "nbiot/radio.hpp"

namespace nbmg::nbiot {

RadioModel::RadioModel(RadioConfig config) : config_(config) {
    if (!config_.valid()) throw std::invalid_argument("RadioModel: invalid config");
}

std::int64_t RadioModel::tbs_bits() const noexcept {
    return kNpdschTbsTable[static_cast<std::size_t>(config_.i_tbs)]
                          [static_cast<std::size_t>(config_.i_sf)];
}

SimTime RadioModel::block_duration(CeLevel level) const noexcept {
    const std::int64_t subframes = kNpdschSubframes[static_cast<std::size_t>(config_.i_sf)];
    const SimTime single{subframes * kMillisPerSubframe + config_.per_block_overhead.count()};
    const int reps = config_.repetitions[static_cast<std::size_t>(level)];
    return SimTime{single.count() * reps};
}

SimTime RadioModel::downlink_airtime(std::int64_t payload_bytes, CeLevel level) const {
    if (payload_bytes < 0) throw std::invalid_argument("RadioModel: negative payload");
    if (payload_bytes == 0) return SimTime{0};
    const std::int64_t bits = payload_bytes * 8;
    const std::int64_t tbs = tbs_bits();
    const std::int64_t blocks = (bits + tbs - 1) / tbs;
    return SimTime{blocks * block_duration(level).count()};
}

double RadioModel::effective_rate_bps(CeLevel level) const noexcept {
    const double bits = static_cast<double>(tbs_bits());
    const double ms = static_cast<double>(block_duration(level).count());
    return bits / ms * 1000.0;
}

}  // namespace nbmg::nbiot
