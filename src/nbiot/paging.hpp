// Paging-occasion arithmetic (TS 36.304 §7) and paging message contents.
//
// A UE in idle mode wakes once per DRX cycle at its paging occasion (PO) and
// monitors the paging channel.  The PO position is a pure function of the
// UE identity and the cycle length:
//
//   UE_ID = IMSI mod ue_id_modulus
//   N     = min(T, nB),  Ns = max(1, nB/T)        (T = cycle in frames)
//   PF    : frame index F with  F mod T == (T/N) * (UE_ID mod N)
//   i_s   = floor(UE_ID / N) mod Ns  ->  PO subframe via lookup table
//
// TS 36.304 applies this to SFN (mod 1024); eDRX cycles longer than 1024
// frames use a hyperframe-level formula.  We apply the congruence to the
// absolute frame counter with ue_id_modulus = 2^20 (the longest eDRX cycle
// is 2^20 frames), which reduces bit-exactly to the standard formula for
// T <= 1024 and spreads eDRX offsets across the whole cycle, exactly the
// behaviour the H-SFN formula provides.
//
// Key ladder property (used by the paper's DA-SC mechanism): for nB <= T,
// the PO set of cycle 2T is a subset of the PO set of cycle T for the same
// UE, so lengthening a cycle only removes occasions and shortening it only
// adds them.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "nbiot/drx.hpp"
#include "nbiot/frames.hpp"
#include "nbiot/types.hpp"

namespace nbmg::nbiot {

/// Cell-level paging parameters.
struct PagingConfig {
    /// nB = T * nb_num / nb_den.  3GPP allows 4T, 2T, T, T/2 .. T/256.
    /// The default (nB = T) gives one paging subframe per frame and exact
    /// ladder nesting.
    std::int64_t nb_num = 1;
    std::int64_t nb_den = 1;

    /// Modulus for UE_ID = IMSI mod ue_id_modulus.  The default spans the
    /// longest eDRX cycle (2^20 frames = 10485.76 s).
    std::uint64_t ue_id_modulus = std::uint64_t{1} << 20;

    /// Maximum paging records carried by one paging message (maxPageRec).
    int max_page_records = 16;

    [[nodiscard]] bool valid() const noexcept {
        return nb_num > 0 && nb_den > 0 && ue_id_modulus > 0 && max_page_records > 0;
    }

    friend bool operator==(const PagingConfig&, const PagingConfig&) = default;
};

/// Computes paging occasions for (IMSI, DRX cycle) pairs.
class PagingSchedule {
public:
    explicit PagingSchedule(PagingConfig config = {});

    [[nodiscard]] const PagingConfig& config() const noexcept { return config_; }

    /// Offset of the (single) PO within one cycle, in milliseconds from the
    /// cycle boundary.  0 <= offset < cycle period.
    [[nodiscard]] SimTime po_offset(Imsi imsi, DrxCycle cycle) const;

    /// First PO at or after `t`.
    [[nodiscard]] SimTime first_po_at_or_after(SimTime t, Imsi imsi, DrxCycle cycle) const;

    /// Last PO strictly before `t`; nullopt when no PO exists in [0, t).
    [[nodiscard]] std::optional<SimTime> last_po_before(SimTime t, Imsi imsi,
                                                        DrxCycle cycle) const;

    /// All POs in the half-open interval [from, to).
    [[nodiscard]] std::vector<SimTime> pos_in_range(SimTime from, SimTime to, Imsi imsi,
                                                    DrxCycle cycle) const;

    /// True when the device has at least one PO in [from, to).
    [[nodiscard]] bool has_po_in_range(SimTime from, SimTime to, Imsi imsi,
                                       DrxCycle cycle) const;

    /// True when `t` is exactly a PO of the device.
    [[nodiscard]] bool is_po(SimTime t, Imsi imsi, DrxCycle cycle) const;

    /// Number of POs in [from, to) (analytic; no enumeration).
    [[nodiscard]] std::int64_t po_count_in_range(SimTime from, SimTime to, Imsi imsi,
                                                 DrxCycle cycle) const;

private:
    PagingConfig config_;
};

/// One entry of the PagingRecordList: "connect, you have downlink data".
struct PagingRecord {
    DeviceId device;
    Imsi imsi;
};

/// The paper's non-critical `mltc-Transmission` extension (Sec. III-C):
/// tells the device when the multicast transmission will happen without
/// requiring it to connect now.  Present only in the DR-SI mechanism.
struct MltcExtension {
    DeviceId device;
    Imsi imsi;
    SimTime multicast_at;  // absolute transmission start time
};

/// A paging message broadcast at one paging occasion.
struct PagingMessage {
    SimTime at;
    std::vector<PagingRecord> records;
    std::vector<MltcExtension> mltc_extensions;

    [[nodiscard]] std::size_t occupancy() const noexcept {
        return records.size() + mltc_extensions.size();
    }
};

}  // namespace nbmg::nbiot
