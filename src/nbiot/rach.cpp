#include "nbiot/rach.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/sink.hpp"

namespace nbmg::nbiot {

RachChannel::RachChannel(sim::Simulation& simulation, RachConfig config,
                         sim::RandomStream rng)
    : sim_(&simulation), config_(config), rng_(std::move(rng)) {
    if (!config_.valid()) throw std::invalid_argument("RachChannel: invalid config");
}

SimTime RachChannel::next_window_at_or_after(SimTime t) const noexcept {
    const std::int64_t period = config_.window_period.count();
    const std::int64_t tm = std::max<std::int64_t>(t.count(), 0);
    const std::int64_t k = (tm + period - 1) / period;
    return SimTime{k * period};
}

void RachChannel::request(SimTime earliest, Callback done) {
    if (!done) throw std::invalid_argument("RachChannel::request: empty callback");
    procedures_.push_back(Procedure{std::move(done), 0, SimTime{0}, false});
    enroll(earliest, procedures_.size() - 1);
}

void RachChannel::inject_background_load(double arrivals_per_second, SimTime until) {
    if (arrivals_per_second <= 0.0) return;
    const double mean_gap_ms = 1000.0 / arrivals_per_second;
    SimTime t = sim_->now();
    while (true) {
        t += SimTime{static_cast<std::int64_t>(rng_.exponential(mean_gap_ms)) + 1};
        if (t >= until) break;
        procedures_.push_back(Procedure{[](const RachOutcome&) {}, 0, SimTime{0}, true});
        enroll(t, procedures_.size() - 1);
    }
}

void RachChannel::enroll(SimTime earliest, std::size_t proc_index) {
    const SimTime window = next_window_at_or_after(std::max(earliest, sim_->now()));
    window_entrants_[window].push_back(proc_index);
    if (!window_scheduled_[window]) {
        window_scheduled_[window] = true;
        sim_->queue().schedule_at(window, [this, window] { resolve_window(window); });
    }
}

void RachChannel::resolve_window(SimTime window_start) {
    auto it = window_entrants_.find(window_start);
    if (it == window_entrants_.end()) return;
    std::vector<std::size_t> entrants = std::move(it->second);
    window_entrants_.erase(it);
    window_scheduled_.erase(window_start);

    // Draw preambles and find collisions.  The preamble space is dense
    // ([0, num_preambles), 48 by default), so the histogram is a plain
    // indexed vector — no hashed container anywhere near an RNG draw.
    std::vector<int> preamble_count(static_cast<std::size_t>(config_.num_preambles), 0);
    std::vector<int> choice(entrants.size());
    for (std::size_t i = 0; i < entrants.size(); ++i) {
        choice[i] = static_cast<int>(rng_.uniform_int(0, config_.num_preambles - 1));
        ++preamble_count[static_cast<std::size_t>(choice[i])];
    }

    const SimTime resolution = window_start + config_.attempt_active_time();
    // Collided entrants re-enroll after a backoff.  Their wakeups are
    // accumulated and inserted as one sorted run lane: with thousands of
    // entrants per window, that is one stable sort instead of thousands
    // of sifts into an already-huge heap.
    sim::EventQueue::Batch retries;
    telemetry::CampaignSink* const sink = sim_->telemetry();
    const auto window_ms = window_start.count();
    const auto entrant_count = static_cast<std::int64_t>(entrants.size());
    for (std::size_t i = 0; i < entrants.size(); ++i) {
        Procedure& proc = procedures_[entrants[i]];
        ++proc.attempts;
        ++total_attempts_;
        proc.active_time += config_.attempt_active_time();
        NBMG_TELEMETRY_EMIT(sink, telemetry::EventKind::rach_attempt, window_ms,
                            telemetry::kNoDevice, choice[i], entrant_count);

        if (preamble_count[static_cast<std::size_t>(choice[i])] == 1) {
            if (!proc.background) {
                proc.done(RachOutcome{true, resolution, proc.attempts, proc.active_time});
            }
            continue;
        }

        ++total_collisions_;
        NBMG_TELEMETRY_EMIT(sink, telemetry::EventKind::rach_collision, window_ms,
                            telemetry::kNoDevice, choice[i],
                            preamble_count[static_cast<std::size_t>(choice[i])]);
        if (proc.attempts >= config_.max_attempts) {
            ++total_failures_;
            NBMG_TELEMETRY_EMIT(sink, telemetry::EventKind::rach_failure, window_ms,
                                telemetry::kNoDevice, proc.attempts, entrant_count);
            if (!proc.background) {
                proc.done(RachOutcome{false, resolution, proc.attempts, proc.active_time});
            }
            continue;
        }
        const SimTime backoff{rng_.uniform_int(0, config_.backoff_max.count())};
        const std::size_t index = entrants[i];
        retries.add(resolution + backoff,
                    [this, index] { enroll(sim_->now(), index); });
    }
    if (!retries.empty()) sim_->queue().schedule_batch(std::move(retries));
}

}  // namespace nbmg::nbiot
