#include "nbiot/cell.hpp"

#include <stdexcept>

namespace nbmg::nbiot {

Cell::Cell(std::uint64_t seed, PagingConfig paging_config, RachConfig rach_config,
           TimingModel timing)
    : sim_(seed),
      paging_(paging_config),
      timing_(timing),
      rach_(sim_, rach_config, sim_.stream("rach")) {
    if (!timing_.valid()) throw std::invalid_argument("Cell: invalid timing model");
}

Ue& Cell::add_ue(const UeSpec& spec) {
    if (spec.device.value != ues_.size()) {
        throw std::invalid_argument("Cell::add_ue: device ids must be dense and in order");
    }
    ues_.push_back(std::make_unique<Ue>(sim_, spec.device, spec.imsi, spec.cycle,
                                        spec.ce_level, paging_, timing_, rach_));
    return *ues_.back();
}

Ue& Cell::ue(DeviceId device) {
    if (device.value >= ues_.size()) throw std::out_of_range("Cell::ue: unknown device");
    return *ues_[device.value];
}

const Ue& Cell::ue(DeviceId device) const {
    if (device.value >= ues_.size()) throw std::out_of_range("Cell::ue: unknown device");
    return *ues_[device.value];
}

}  // namespace nbmg::nbiot
