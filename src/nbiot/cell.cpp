#include "nbiot/cell.hpp"

#include <stdexcept>

namespace nbmg::nbiot {

Cell::Cell(std::uint64_t seed, PagingConfig paging_config, RachConfig rach_config,
           TimingModel timing)
    : sim_(seed),
      paging_(paging_config),
      timing_(timing),
      rach_(sim_, rach_config, sim_.stream("rach")) {
    if (!timing_.valid()) throw std::invalid_argument("Cell: invalid timing model");
}

Ue& Cell::add_ue(const UeSpec& spec) {
    if (spec.device.value != ues_.size()) {
        throw std::invalid_argument("Cell::add_ue: device ids must be dense and in order");
    }
    accounting_.energy.emplace_back();
    accounting_.po_count.push_back(0);
    ues_.emplace_back(sim_, spec.device, spec.imsi, spec.cycle, spec.ce_level,
                      paging_, timing_, rach_, accounting_, fleet_hooks_);
    return ues_.back();
}

void Cell::reserve_ues(std::size_t count) {
    accounting_.energy.reserve(count);
    accounting_.po_count.reserve(count);
}

Ue& Cell::ue(DeviceId device) {
    if (device.value >= ues_.size()) throw std::out_of_range("Cell::ue: unknown device");
    return ues_[device.value];
}

const Ue& Cell::ue(DeviceId device) const {
    if (device.value >= ues_.size()) throw std::out_of_range("Cell::ue: unknown device");
    return ues_[device.value];
}

}  // namespace nbmg::nbiot
