// Radio-frame arithmetic: conversions between simulated time and the
// SFN / H-SFN / subframe coordinates used by 3GPP procedures.
#pragma once

#include <cstdint>

#include "nbiot/types.hpp"

namespace nbmg::nbiot {

/// Absolute frame index since simulation start (never wraps).
using FrameIndex = std::int64_t;

/// A position on the radio frame grid.
struct RadioTime {
    FrameIndex frame = 0;  // absolute frame counter
    std::int64_t subframe = 0;  // 0..9 within the frame

    /// System Frame Number as broadcast on the air interface (wraps at 1024).
    [[nodiscard]] constexpr std::int64_t sfn() const noexcept {
        return frame % kFramesPerHyperframe;
    }

    /// Hyper-SFN (wraps at 1024; one hyperframe is 10.24 s).
    [[nodiscard]] constexpr std::int64_t hyper_sfn() const noexcept {
        return (frame / kFramesPerHyperframe) % kHyperframeCount;
    }

    [[nodiscard]] constexpr SimTime to_time() const noexcept {
        return SimTime{frame * kMillisPerFrame + subframe * kMillisPerSubframe};
    }

    friend constexpr auto operator<=>(const RadioTime&, const RadioTime&) = default;
};

/// Decomposes a simulated instant into frame/subframe coordinates.
[[nodiscard]] constexpr RadioTime to_radio_time(SimTime t) noexcept {
    const std::int64_t ms = t.count();
    return RadioTime{ms / kMillisPerFrame, (ms % kMillisPerFrame) / kMillisPerSubframe};
}

/// Start of the frame containing `t`.
[[nodiscard]] constexpr SimTime frame_start(SimTime t) noexcept {
    return SimTime{(t.count() / kMillisPerFrame) * kMillisPerFrame};
}

/// First frame boundary at or after `t`.
[[nodiscard]] constexpr SimTime align_up_to_frame(SimTime t) noexcept {
    const std::int64_t ms = t.count();
    const std::int64_t rem = ms % kMillisPerFrame;
    return rem == 0 ? t : SimTime{ms + (kMillisPerFrame - rem)};
}

[[nodiscard]] constexpr FrameIndex frame_index_of(SimTime t) noexcept {
    return t.count() / kMillisPerFrame;
}

}  // namespace nbmg::nbiot
