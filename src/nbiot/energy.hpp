// Uptime and energy accounting.
//
// The paper uses uptime as the energy proxy, split into two buckets:
//   - light-sleep uptime: paging-occasion monitoring + paging reception
//   - connected uptime:   random access, RRC signaling, waiting for the
//                         multicast to start, and receiving the data
// We track the fine-grained power states and expose both the paper's
// buckets and a concrete energy/battery-life model as an extension.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "nbiot/types.hpp"

namespace nbmg::nbiot {

enum class PowerState : std::uint8_t {
    deep_sleep = 0,      // RF and TX off
    po_monitor,          // periodic NPDCCH check (light sleep)
    paging_rx,           // decoding a paging message (light sleep)
    rach,                // msg1..msg4 exchange
    connected_signaling, // RRC setup/reconfiguration/release
    connected_wait,      // connected, waiting for the multicast to begin
    connected_rx,        // receiving downlink data
};

inline constexpr std::size_t kPowerStateCount = 7;

[[nodiscard]] constexpr const char* to_string(PowerState s) noexcept {
    switch (s) {
        case PowerState::deep_sleep: return "deep_sleep";
        case PowerState::po_monitor: return "po_monitor";
        case PowerState::paging_rx: return "paging_rx";
        case PowerState::rach: return "rach";
        case PowerState::connected_signaling: return "connected_signaling";
        case PowerState::connected_wait: return "connected_wait";
        case PowerState::connected_rx: return "connected_rx";
    }
    return "?";
}

/// Typical NB-IoT module current draw per state (mA at 3.6 V).  Deep sleep
/// is in the microamp range; receive paths draw tens of mA; transmission
/// at +23 dBm draws hundreds.
struct PowerProfile {
    std::array<double, kPowerStateCount> current_ma{
        0.003,  // deep_sleep
        46.0,   // po_monitor
        46.0,   // paging_rx
        140.0,  // rach (TX-heavy mix)
        90.0,   // connected_signaling
        46.0,   // connected_wait
        46.0,   // connected_rx
    };
    double voltage = 3.6;
    double battery_mah = 5000.0;  // typical 10-year NB-IoT primary cell

    [[nodiscard]] static PowerProfile typical_nbiot() { return PowerProfile{}; }
};

/// Accumulates time per power state for one device.
class EnergyAccount {
public:
    // Inline: this is the single hottest accounting call in a campaign
    // (every state transition of every device lands here).
    void add(PowerState state, SimTime duration) {
        if (duration < SimTime{0}) {
            throw std::invalid_argument("EnergyAccount::add: negative duration");
        }
        buckets_[static_cast<std::size_t>(state)] += duration;
    }

    [[nodiscard]] SimTime uptime(PowerState state) const noexcept {
        return buckets_[static_cast<std::size_t>(state)];
    }

    /// The paper's "light sleep mode" bucket: POs + paging reception.
    [[nodiscard]] SimTime light_sleep_uptime() const noexcept {
        return uptime(PowerState::po_monitor) + uptime(PowerState::paging_rx);
    }

    /// The paper's "connected mode" bucket: RA + signaling + waiting + data.
    [[nodiscard]] SimTime connected_uptime() const noexcept {
        return uptime(PowerState::rach) + uptime(PowerState::connected_signaling) +
               uptime(PowerState::connected_wait) + uptime(PowerState::connected_rx);
    }

    [[nodiscard]] SimTime total_uptime() const noexcept {
        return light_sleep_uptime() + connected_uptime();
    }

    /// Energy spent in the tracked (non-deep-sleep) states, millijoules.
    [[nodiscard]] double active_energy_mj(const PowerProfile& profile) const noexcept;

    /// Average current over `horizon` assuming deep sleep outside tracked
    /// states; used for battery-life projections.
    [[nodiscard]] double average_current_ma(const PowerProfile& profile,
                                            SimTime horizon) const noexcept;

    EnergyAccount& operator+=(const EnergyAccount& other) noexcept;

private:
    std::array<SimTime, kPowerStateCount> buckets_{};
};

/// Years of battery life at a sustained average current.
[[nodiscard]] double battery_life_years(const PowerProfile& profile,
                                        double average_current_ma) noexcept;

}  // namespace nbmg::nbiot
