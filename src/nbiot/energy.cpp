#include "nbiot/energy.hpp"

#include <stdexcept>

namespace nbmg::nbiot {

double EnergyAccount::active_energy_mj(const PowerProfile& profile) const noexcept {
    double mj = 0.0;
    for (std::size_t i = 1; i < kPowerStateCount; ++i) {  // skip deep_sleep
        const double seconds = static_cast<double>(buckets_[i].count()) / 1000.0;
        mj += profile.current_ma[i] * profile.voltage * seconds;  // mA*V*s = mJ
    }
    return mj;
}

double EnergyAccount::average_current_ma(const PowerProfile& profile,
                                         SimTime horizon) const noexcept {
    if (horizon.count() <= 0) return 0.0;
    double ma_ms = 0.0;
    SimTime tracked{0};
    for (std::size_t i = 1; i < kPowerStateCount; ++i) {
        ma_ms += profile.current_ma[i] * static_cast<double>(buckets_[i].count());
        tracked += buckets_[i];
    }
    const SimTime sleeping = horizon > tracked ? horizon - tracked : SimTime{0};
    ma_ms += profile.current_ma[0] * static_cast<double>(sleeping.count());
    return ma_ms / static_cast<double>(horizon.count());
}

EnergyAccount& EnergyAccount::operator+=(const EnergyAccount& other) noexcept {
    for (std::size_t i = 0; i < kPowerStateCount; ++i) {
        buckets_[i] += other.buckets_[i];
    }
    return *this;
}

double battery_life_years(const PowerProfile& profile, double average_current_ma) noexcept {
    if (average_current_ma <= 0.0) return 0.0;
    const double hours = profile.battery_mah / average_current_ma;
    return hours / (24.0 * 365.25);
}

}  // namespace nbmg::nbiot
