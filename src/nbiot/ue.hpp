// Event-driven NB-IoT device (UE) model.
//
// The UE monitors its paging occasions per its current DRX cycle, reacts to
// pages (normal, DRX-reconfiguration, or the DR-SI mltc extension), performs
// random access on the shared RACH channel, accrues per-power-state uptime,
// and receives multicast/unicast payloads when the eNB starts them.
//
// Accounting note: PO-monitor cost is charged at every scheduled occasion,
// including occasions that overlap a connection.  This matches the paper's
// analytic accounting (light-sleep uptime is a pure function of the DRX
// cycle over the horizon) and keeps the unicast reference exactly
// comparable; the overlap is at most one occasion per connection.
//
// Performance note: PO monitoring is hybrid analytic/event-driven.  While
// a device's DRX cycle is fixed, its occasions in any window are a closed
// form (PagingSchedule::po_count_in_range), so the UE schedules no
// per-occasion events at all — one sentinel at the monitoring horizon
// settles the count and the energy in a single multiplication.  Only
// page_for_reconfig (the DA-SC adjustment, the one procedure whose
// event ordering against a concurrent cycle change matters) switches the
// device to materialized per-occasion events, and the release that
// restores the cycle switches it back.  Both modes are bit-identical in
// every observable (po_count, energy, fire order of surviving events):
// PO accounting commutes with every other handler, and the materialized
// window reproduces the legacy event chain verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "nbiot/energy.hpp"
#include "nbiot/paging.hpp"
#include "nbiot/rach.hpp"
#include "nbiot/rrc.hpp"
#include "sim/simulation.hpp"
#include "sim/small_function.hpp"

namespace nbmg::nbiot {

/// Struct-of-arrays per-device accounting, owned by the cell and indexed
/// by dense DeviceId.  The hot counters every PO settlement and energy
/// charge touches live in contiguous vectors instead of inside each Ue,
/// so fleet-wide accounting sweeps are cache-linear.
struct FleetAccounting {
    std::vector<EnergyAccount> energy;
    std::vector<std::uint64_t> po_count;
};

enum class UeState : std::uint8_t {
    idle,               // sleeping between paging occasions
    accessing,          // decoding a page / RACH / RRC setup in progress
    connected_waiting,  // connected, waiting for the transmission to start
    receiving,          // receiving downlink data
};

[[nodiscard]] constexpr const char* to_string(UeState s) noexcept {
    switch (s) {
        case UeState::idle: return "idle";
        case UeState::accessing: return "accessing";
        case UeState::connected_waiting: return "connected_waiting";
        case UeState::receiving: return "receiving";
    }
    return "?";
}

class Ue {
public:
    struct Hooks {
        /// RRC connection established (after RACH + setup signaling).
        std::function<void(DeviceId, SimTime)> on_connected;
        /// Random access gave up after max attempts.
        std::function<void(DeviceId, SimTime)> on_rach_failure;
        /// Payload reception finished and the connection was released.
        std::function<void(DeviceId, SimTime)> on_released;
    };

    /// `accounting` must outlive the UE and already hold a slot for
    /// `device`; `fleet_hooks` is the cell-shared hook set (may have empty
    /// members), overridable per UE via set_hooks.
    Ue(sim::Simulation& simulation, DeviceId device, Imsi imsi, DrxCycle cycle,
       CeLevel ce_level, const PagingSchedule& paging, const TimingModel& timing,
       RachChannel& rach, FleetAccounting& accounting, const Hooks& fleet_hooks);

    Ue(const Ue&) = delete;
    Ue& operator=(const Ue&) = delete;

    /// Per-UE hook override; devices without one dispatch through the
    /// cell-shared hook set (one std::function triple per cell instead of
    /// three per device).
    void set_hooks(Hooks hooks) {
        own_hooks_ = std::make_unique<Hooks>(std::move(hooks));
    }

    /// Begins the PO-monitoring loop; the UE wakes at every PO of its
    /// current DRX cycle until `until`.
    void start_monitoring(SimTime until);

    /// --- eNB-initiated procedures (call at the device's PO time) ---

    /// Standard page: decode, connect, then wait for instructions.
    void page_normal();

    /// DR-SI extended page: decode the mltc extension, stay idle, set T322
    /// to fire at `wake_at`, then connect with cause multicastReception.
    void page_mltc(SimTime wake_at);

    /// DA-SC adjustment page: decode, connect, receive the DRX
    /// reconfiguration, and release immediately.  The original cycle is
    /// remembered and restored after the multicast reception.  Because the
    /// ladder nests (POs of the old cycle satisfy the congruence of every
    /// shorter one), the adapted occasions repeat from this page's instant,
    /// exactly as the paper's Fig. 5 depicts.
    void page_for_reconfig(DrxCycle new_cycle);

    /// --- eNB connected-mode commands ---

    /// Starts downlink reception on an established connection; data ends at
    /// `data_end`, then the device stays connected for `tail` (inactivity
    /// timer, if modelled), restores its DRX cycle if it was adjusted, and
    /// releases.
    void begin_reception(SimTime data_end, SimTime tail);

    /// Releases an established connection without receiving anything.
    void release_without_reception();

    /// SC-PTM-style idle-mode broadcast reception: the device receives on a
    /// broadcast bearer without ever connecting (no RACH, no RRC).
    void receive_idle_broadcast(SimTime data_end);

    /// --- failure injection: churn (src/faults) ---

    /// Powers the device off from idle: PO accounting is settled through
    /// the current instant and then frozen (no occasions are charged while
    /// off-air), any materialized occasion event is cancelled, and the
    /// device stops listening — pages delivered while off are misses.
    void power_off();

    /// Rejoins the network after power_off: the device re-attaches (one
    /// clean RACH exchange plus RRC setup/release signaling, charged
    /// analytically so the shared channel's contention streams are
    /// untouched), loses any DA-SC adjustment — it re-enters the ladder at
    /// its original cycle — and resumes closed-form PO monitoring from
    /// `now`.
    void power_on();

    /// --- failure injection: cell outage (src/faults) ---

    /// Ends PO monitoring at the current instant, from any state:
    /// occasions up to now are settled into the fleet counters, nothing
    /// later is charged.  Used when the serving cell goes dark mid-run —
    /// the event loop stops draining, so the analytic horizon sentinel
    /// never fires and the ledger must be closed explicitly.
    void halt_monitoring();

    [[nodiscard]] bool powered() const noexcept { return powered_; }

    /// Charges uptime for protocol features outside the UE state machine
    /// (e.g. SC-MCCH monitoring in the SC-PTM baseline).
    void charge(PowerState state, SimTime duration) {
        accounting_->energy[device_.value].add(state, duration);
    }

    /// --- observers ---

    /// True when the device is idle and `t` is one of its paging occasions
    /// under its current cycle.
    [[nodiscard]] bool listening_at(SimTime t) const;

    /// Next paging occasion at or after `t` under the current cycle.
    [[nodiscard]] SimTime next_po_at_or_after(SimTime t) const;

    [[nodiscard]] DeviceId device() const noexcept { return device_; }
    [[nodiscard]] Imsi imsi() const noexcept { return imsi_; }
    [[nodiscard]] UeState state() const noexcept { return state_; }
    [[nodiscard]] DrxCycle current_cycle() const noexcept { return cycle_; }
    [[nodiscard]] DrxCycle original_cycle() const noexcept { return original_cycle_; }
    [[nodiscard]] CeLevel ce_level() const noexcept { return ce_level_; }
    [[nodiscard]] const EnergyAccount& energy() const noexcept {
        return accounting_->energy[device_.value];
    }
    [[nodiscard]] bool payload_received() const noexcept { return payload_received_; }
    [[nodiscard]] std::uint64_t po_count() const noexcept {
        return accounting_->po_count[device_.value];
    }
    [[nodiscard]] std::optional<SimTime> connected_at() const noexcept { return connected_at_; }
    [[nodiscard]] std::optional<SimTime> released_at() const noexcept { return released_at_; }
    [[nodiscard]] int rach_attempts() const noexcept { return rach_attempts_; }
    [[nodiscard]] EstablishmentCause last_cause() const noexcept { return last_cause_; }

private:
    void schedule_next_po();
    void on_po();
    /// Analytic-mode settlement: adds every PO in [analytic_from_, bound)
    /// to the fleet counters in one closed-form step and advances the
    /// window.  No-op in materialized mode.
    void settle_pos(SimTime bound);
    /// Switches to per-occasion events (the legacy chain), settling the
    /// analytic window through the current instant first.
    void materialize_pos();
    /// Returns to analytic mode: cancels the pending occasion event and
    /// resumes closed-form counting exactly where the chain stopped.
    void dematerialize_pos();
    /// Continuation capacity 16: every caller captures at most `this` plus
    /// one DrxCycle, and the small bound keeps the enclosing RA-completion
    /// closure inside RachChannel::Callback's own inline buffer.
    using ConnectedFn = sim::SmallFunction<void(), 16>;
    void start_connection(SimTime earliest, EstablishmentCause cause,
                          ConnectedFn once_connected);
    void apply_cycle(DrxCycle cycle);
    void require_state(UeState expected, const char* operation) const;
    [[nodiscard]] const Hooks& hooks() const noexcept {
        return own_hooks_ ? *own_hooks_ : *fleet_hooks_;
    }

    sim::Simulation* sim_;
    DeviceId device_;
    Imsi imsi_;
    DrxCycle cycle_;
    DrxCycle original_cycle_;
    CeLevel ce_level_;
    const PagingSchedule* paging_;
    const TimingModel* timing_;
    RachChannel* rach_;
    FleetAccounting* accounting_;
    const Hooks* fleet_hooks_;
    std::unique_ptr<Hooks> own_hooks_;

    UeState state_ = UeState::idle;
    bool powered_ = true;
    SimTime monitor_until_{0};
    std::optional<sim::EventId> po_event_;
    SimTime next_po_time_{0};   // fire time of po_event_, when set
    SimTime analytic_from_{0};  // next unsettled instant in analytic mode
    bool materialized_ = false;
    SimTime wait_started_{0};
    bool payload_received_ = false;
    std::optional<SimTime> connected_at_;
    std::optional<SimTime> released_at_;
    int rach_attempts_ = 0;
    EstablishmentCause last_cause_ = EstablishmentCause::mt_access;
};

}  // namespace nbmg::nbiot
