// Event-driven NB-IoT device (UE) model.
//
// The UE monitors its paging occasions per its current DRX cycle, reacts to
// pages (normal, DRX-reconfiguration, or the DR-SI mltc extension), performs
// random access on the shared RACH channel, accrues per-power-state uptime,
// and receives multicast/unicast payloads when the eNB starts them.
//
// Accounting note: PO-monitor cost is charged at every scheduled occasion,
// including occasions that overlap a connection.  This matches the paper's
// analytic accounting (light-sleep uptime is a pure function of the DRX
// cycle over the horizon) and keeps the unicast reference exactly
// comparable; the overlap is at most one occasion per connection.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>

#include "nbiot/energy.hpp"
#include "nbiot/paging.hpp"
#include "nbiot/rach.hpp"
#include "nbiot/rrc.hpp"
#include "sim/simulation.hpp"

namespace nbmg::nbiot {

enum class UeState : std::uint8_t {
    idle,               // sleeping between paging occasions
    accessing,          // decoding a page / RACH / RRC setup in progress
    connected_waiting,  // connected, waiting for the transmission to start
    receiving,          // receiving downlink data
};

[[nodiscard]] constexpr const char* to_string(UeState s) noexcept {
    switch (s) {
        case UeState::idle: return "idle";
        case UeState::accessing: return "accessing";
        case UeState::connected_waiting: return "connected_waiting";
        case UeState::receiving: return "receiving";
    }
    return "?";
}

class Ue {
public:
    struct Hooks {
        /// RRC connection established (after RACH + setup signaling).
        std::function<void(DeviceId, SimTime)> on_connected;
        /// Random access gave up after max attempts.
        std::function<void(DeviceId, SimTime)> on_rach_failure;
        /// Payload reception finished and the connection was released.
        std::function<void(DeviceId, SimTime)> on_released;
    };

    Ue(sim::Simulation& simulation, DeviceId device, Imsi imsi, DrxCycle cycle,
       CeLevel ce_level, const PagingSchedule& paging, const TimingModel& timing,
       RachChannel& rach);

    Ue(const Ue&) = delete;
    Ue& operator=(const Ue&) = delete;

    void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /// Begins the PO-monitoring loop; the UE wakes at every PO of its
    /// current DRX cycle until `until`.
    void start_monitoring(SimTime until);

    /// --- eNB-initiated procedures (call at the device's PO time) ---

    /// Standard page: decode, connect, then wait for instructions.
    void page_normal();

    /// DR-SI extended page: decode the mltc extension, stay idle, set T322
    /// to fire at `wake_at`, then connect with cause multicastReception.
    void page_mltc(SimTime wake_at);

    /// DA-SC adjustment page: decode, connect, receive the DRX
    /// reconfiguration, and release immediately.  The original cycle is
    /// remembered and restored after the multicast reception.  Because the
    /// ladder nests (POs of the old cycle satisfy the congruence of every
    /// shorter one), the adapted occasions repeat from this page's instant,
    /// exactly as the paper's Fig. 5 depicts.
    void page_for_reconfig(DrxCycle new_cycle);

    /// --- eNB connected-mode commands ---

    /// Starts downlink reception on an established connection; data ends at
    /// `data_end`, then the device stays connected for `tail` (inactivity
    /// timer, if modelled), restores its DRX cycle if it was adjusted, and
    /// releases.
    void begin_reception(SimTime data_end, SimTime tail);

    /// Releases an established connection without receiving anything.
    void release_without_reception();

    /// SC-PTM-style idle-mode broadcast reception: the device receives on a
    /// broadcast bearer without ever connecting (no RACH, no RRC).
    void receive_idle_broadcast(SimTime data_end);

    /// Charges uptime for protocol features outside the UE state machine
    /// (e.g. SC-MCCH monitoring in the SC-PTM baseline).
    void charge(PowerState state, SimTime duration) { energy_.add(state, duration); }

    /// --- observers ---

    /// True when the device is idle and `t` is one of its paging occasions
    /// under its current cycle.
    [[nodiscard]] bool listening_at(SimTime t) const;

    /// Next paging occasion at or after `t` under the current cycle.
    [[nodiscard]] SimTime next_po_at_or_after(SimTime t) const;

    [[nodiscard]] DeviceId device() const noexcept { return device_; }
    [[nodiscard]] Imsi imsi() const noexcept { return imsi_; }
    [[nodiscard]] UeState state() const noexcept { return state_; }
    [[nodiscard]] DrxCycle current_cycle() const noexcept { return cycle_; }
    [[nodiscard]] DrxCycle original_cycle() const noexcept { return original_cycle_; }
    [[nodiscard]] CeLevel ce_level() const noexcept { return ce_level_; }
    [[nodiscard]] const EnergyAccount& energy() const noexcept { return energy_; }
    [[nodiscard]] bool payload_received() const noexcept { return payload_received_; }
    [[nodiscard]] std::uint64_t po_count() const noexcept { return po_count_; }
    [[nodiscard]] std::optional<SimTime> connected_at() const noexcept { return connected_at_; }
    [[nodiscard]] std::optional<SimTime> released_at() const noexcept { return released_at_; }
    [[nodiscard]] int rach_attempts() const noexcept { return rach_attempts_; }
    [[nodiscard]] EstablishmentCause last_cause() const noexcept { return last_cause_; }

private:
    void schedule_next_po();
    void on_po();
    void start_connection(SimTime earliest, EstablishmentCause cause,
                          std::function<void()> once_connected);
    void apply_cycle(DrxCycle cycle);
    void require_state(UeState expected, const char* operation) const;

    sim::Simulation* sim_;
    DeviceId device_;
    Imsi imsi_;
    DrxCycle cycle_;
    DrxCycle original_cycle_;
    CeLevel ce_level_;
    const PagingSchedule* paging_;
    const TimingModel* timing_;
    RachChannel* rach_;
    Hooks hooks_;

    UeState state_ = UeState::idle;
    EnergyAccount energy_;
    SimTime monitor_until_{0};
    std::optional<sim::EventId> po_event_;
    SimTime wait_started_{0};
    bool payload_received_ = false;
    std::uint64_t po_count_ = 0;
    std::optional<SimTime> connected_at_;
    std::optional<SimTime> released_at_;
    int rach_attempts_ = 0;
    EstablishmentCause last_cause_ = EstablishmentCause::mt_access;
};

}  // namespace nbmg::nbiot
