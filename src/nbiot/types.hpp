// Fundamental identifiers and constants of the NB-IoT model.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace nbmg::nbiot {

using sim::SimTime;

/// Simulator-local device handle (dense, 0-based).  Distinct from the IMSI,
/// which drives the paging-occasion arithmetic.
struct DeviceId {
    std::uint32_t value = 0;

    friend auto operator<=>(DeviceId, DeviceId) = default;
};

/// International Mobile Subscriber Identity (15 decimal digits in reality;
/// any 64-bit value in the model).  UE_ID for paging is derived from it.
struct Imsi {
    std::uint64_t value = 0;

    friend auto operator<=>(Imsi, Imsi) = default;
};

/// NB-IoT coverage-enhancement level.  Deeper coverage means more
/// repetitions on every channel and therefore lower effective data rates.
enum class CeLevel : std::uint8_t {
    ce0 = 0,  // normal coverage (~144 dB MCL)
    ce1 = 1,  // robust coverage (~154 dB MCL)
    ce2 = 2,  // extreme coverage (~164 dB MCL)
};

[[nodiscard]] constexpr const char* to_string(CeLevel level) noexcept {
    switch (level) {
        case CeLevel::ce0: return "CE0";
        case CeLevel::ce1: return "CE1";
        case CeLevel::ce2: return "CE2";
    }
    return "CE?";
}

/// Air-interface timing constants.
inline constexpr std::int64_t kMillisPerSubframe = 1;
inline constexpr std::int64_t kSubframesPerFrame = 10;
inline constexpr std::int64_t kMillisPerFrame = kMillisPerSubframe * kSubframesPerFrame;
inline constexpr std::int64_t kFramesPerHyperframe = 1024;  // SFN wraps at 1024
inline constexpr std::int64_t kHyperframeCount = 1024;      // H-SFN wraps at 1024

}  // namespace nbmg::nbiot

template <>
struct std::hash<nbmg::nbiot::DeviceId> {
    std::size_t operator()(nbmg::nbiot::DeviceId id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};

template <>
struct std::hash<nbmg::nbiot::Imsi> {
    std::size_t operator()(nbmg::nbiot::Imsi imsi) const noexcept {
        return std::hash<std::uint64_t>{}(imsi.value);
    }
};
