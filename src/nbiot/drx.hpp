// The DRX / eDRX cycle ladder.
//
// 3GPP defines paging DRX cycles of 0.32/0.64/1.28/2.56 s (TS 36.331) and,
// for NB-IoT, extended DRX (eDRX) cycles from 20.48 s up to 10485.76 s
// (TS 36.304, GSMA low-power WAN white paper).  Every value is exactly twice
// the previous one, a property both the paper and the DA-SC mechanism rely
// on.  We model the full doubling ladder 320 ms * 2^k for k = 0..15.
#pragma once

#include <array>
#include <chrono>
#include <compare>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "nbiot/types.hpp"

namespace nbmg::nbiot {

/// A validated DRX cycle drawn from the doubling ladder.
class DrxCycle {
public:
    static constexpr int kLadderSize = 16;  // 320 ms .. 10485.76 s

    /// Index 0 is the shortest cycle (320 ms); each step doubles.
    [[nodiscard]] static constexpr DrxCycle from_index(int index) {
        return DrxCycle{index};
    }

    /// Returns the ladder value equal to `period`, if any.
    [[nodiscard]] static std::optional<DrxCycle> from_period(SimTime period) noexcept;

    /// Longest ladder value less than or equal to `period`; nullopt when
    /// `period` is below the shortest cycle.
    [[nodiscard]] static std::optional<DrxCycle> longest_at_most(SimTime period) noexcept;

    [[nodiscard]] constexpr SimTime period() const noexcept {
        return SimTime{kShortestMs << index_};
    }
    [[nodiscard]] constexpr std::int64_t period_ms() const noexcept {
        return kShortestMs << index_;
    }
    [[nodiscard]] constexpr std::int64_t period_frames() const noexcept {
        return period_ms() / kMillisPerFrame;
    }
    [[nodiscard]] constexpr int index() const noexcept { return index_; }

    /// Standard (connected/idle-mode) DRX tops out at 2.56 s; anything
    /// longer is an eDRX cycle.
    [[nodiscard]] constexpr bool is_edrx() const noexcept { return period_ms() > 2560; }

    /// NB-IoT eDRX values start at 20.48 s (TS 36.304 for Cat-NB).
    [[nodiscard]] constexpr bool is_nbiot_edrx() const noexcept {
        return period_ms() >= 20480;
    }

    [[nodiscard]] constexpr bool has_shorter() const noexcept { return index_ > 0; }
    [[nodiscard]] constexpr bool has_longer() const noexcept {
        return index_ < kLadderSize - 1;
    }
    [[nodiscard]] constexpr DrxCycle shorter() const { return DrxCycle{index_ - 1}; }
    [[nodiscard]] constexpr DrxCycle longer() const { return DrxCycle{index_ + 1}; }

    [[nodiscard]] double period_seconds() const noexcept {
        return static_cast<double>(period_ms()) / 1000.0;
    }

    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(DrxCycle a, DrxCycle b) noexcept {
        return a.index_ <=> b.index_;
    }
    friend constexpr bool operator==(DrxCycle a, DrxCycle b) noexcept {
        return a.index_ == b.index_;
    }

private:
    explicit constexpr DrxCycle(int index) : index_(index) {
        if (index < 0 || index >= kLadderSize) {
            throw std::out_of_range("DrxCycle index outside ladder");
        }
    }

    static constexpr std::int64_t kShortestMs = 320;
    int index_ = 0;
};

/// All ladder values, shortest first.
[[nodiscard]] std::array<DrxCycle, DrxCycle::kLadderSize> drx_ladder();

/// Common named cycles.
namespace drx {
[[nodiscard]] DrxCycle seconds_0_32();
[[nodiscard]] DrxCycle seconds_0_64();
[[nodiscard]] DrxCycle seconds_1_28();
[[nodiscard]] DrxCycle seconds_2_56();
[[nodiscard]] DrxCycle seconds_5_12();
[[nodiscard]] DrxCycle seconds_10_24();
[[nodiscard]] DrxCycle seconds_20_48();
[[nodiscard]] DrxCycle seconds_40_96();
[[nodiscard]] DrxCycle seconds_81_92();
[[nodiscard]] DrxCycle seconds_163_84();
[[nodiscard]] DrxCycle seconds_327_68();
[[nodiscard]] DrxCycle seconds_655_36();
[[nodiscard]] DrxCycle seconds_1310_72();
[[nodiscard]] DrxCycle seconds_2621_44();
[[nodiscard]] DrxCycle seconds_5242_88();
[[nodiscard]] DrxCycle seconds_10485_76();
}  // namespace drx

}  // namespace nbmg::nbiot
