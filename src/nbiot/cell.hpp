// A single NB-IoT cell: one eNB's paging/RACH resources plus the attached
// UE population, wired to one discrete-event simulation.
//
// The cell owns the protocol substrates; grouping logic (who to page when,
// when to transmit) lives in nbmg::core, which drives the cell through the
// Ue interface.  This mirrors the paper's setting: "a single eNB scenario
// serving a large number of NB-IoT devices".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nbiot/paging.hpp"
#include "nbiot/rach.hpp"
#include "nbiot/rrc.hpp"
#include "nbiot/ue.hpp"
#include "sim/simulation.hpp"

namespace nbmg::nbiot {

/// Static description of one device, as known to the network.
struct UeSpec {
    DeviceId device;
    Imsi imsi;
    DrxCycle cycle = DrxCycle::from_index(0);
    CeLevel ce_level = CeLevel::ce0;
};

class Cell {
public:
    Cell(std::uint64_t seed, PagingConfig paging_config, RachConfig rach_config,
         TimingModel timing);

    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    /// Adds a UE.  Device ids must be dense: 0, 1, 2, ... in order.
    Ue& add_ue(const UeSpec& spec);

    [[nodiscard]] Ue& ue(DeviceId device);
    [[nodiscard]] const Ue& ue(DeviceId device) const;
    [[nodiscard]] std::size_t ue_count() const noexcept { return ues_.size(); }

    [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
    [[nodiscard]] const sim::Simulation& simulation() const noexcept { return sim_; }
    [[nodiscard]] const PagingSchedule& paging() const noexcept { return paging_; }
    [[nodiscard]] RachChannel& rach() noexcept { return rach_; }
    [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

private:
    sim::Simulation sim_;
    PagingSchedule paging_;
    TimingModel timing_;
    RachChannel rach_;
    std::vector<std::unique_ptr<Ue>> ues_;
};

}  // namespace nbmg::nbiot
