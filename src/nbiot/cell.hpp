// A single NB-IoT cell: one eNB's paging/RACH resources plus the attached
// UE population, wired to one discrete-event simulation.
//
// The cell owns the protocol substrates; grouping logic (who to page when,
// when to transmit) lives in nbmg::core, which drives the cell through the
// Ue interface.  This mirrors the paper's setting: "a single eNB scenario
// serving a large number of NB-IoT devices".
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "nbiot/paging.hpp"
#include "nbiot/rach.hpp"
#include "nbiot/rrc.hpp"
#include "nbiot/ue.hpp"
#include "sim/simulation.hpp"

namespace nbmg::nbiot {

/// Static description of one device, as known to the network.
struct UeSpec {
    DeviceId device;
    Imsi imsi;
    DrxCycle cycle = DrxCycle::from_index(0);
    CeLevel ce_level = CeLevel::ce0;
};

class Cell {
public:
    Cell(std::uint64_t seed, PagingConfig paging_config, RachConfig rach_config,
         TimingModel timing);

    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    /// Adds a UE.  Device ids must be dense: 0, 1, 2, ... in order.
    Ue& add_ue(const UeSpec& spec);

    /// Pre-sizes the fleet accounting arrays for `count` devices.
    void reserve_ues(std::size_t count);

    /// Installs the cell-shared hook set every UE without a per-UE
    /// override dispatches through — one std::function triple per cell
    /// instead of three per device.  May be called before or after
    /// add_ue; affects all UEs of this cell.
    void set_ue_hooks(Ue::Hooks hooks) { fleet_hooks_ = std::move(hooks); }

    [[nodiscard]] Ue& ue(DeviceId device);
    [[nodiscard]] const Ue& ue(DeviceId device) const;
    [[nodiscard]] std::size_t ue_count() const noexcept { return ues_.size(); }

    /// Struct-of-arrays per-device counters, indexed by dense DeviceId.
    [[nodiscard]] const FleetAccounting& accounting() const noexcept {
        return accounting_;
    }

    [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
    [[nodiscard]] const sim::Simulation& simulation() const noexcept { return sim_; }
    [[nodiscard]] const PagingSchedule& paging() const noexcept { return paging_; }
    [[nodiscard]] RachChannel& rach() noexcept { return rach_; }
    [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

private:
    sim::Simulation sim_;
    PagingSchedule paging_;
    TimingModel timing_;
    RachChannel rach_;
    // Deque: pointer-stable growth (UEs capture `this` in scheduled
    // lambdas) without one allocation per device.
    std::deque<Ue> ues_;
    FleetAccounting accounting_;
    Ue::Hooks fleet_hooks_;
};

}  // namespace nbmg::nbiot
