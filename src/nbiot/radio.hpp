// NPDSCH downlink airtime model.
//
// NB-IoT delivers downlink data in transport blocks selected from the
// TS 36.213 NPDSCH TBS table (I_TBS x I_SF).  Each block costs its
// subframes plus control overhead (NPDCCH + scheduling gaps), and the
// whole block is repeated 2^r times at deeper coverage-enhancement levels.
// With the defaults (Rel-13: TBS 680 over 3 subframes, 24 ms overhead,
// CE0 repetition 1) the sustained rate is ~25 kbit/s, matching published
// Rel-13 NB-IoT downlink throughput.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "nbiot/types.hpp"

namespace nbmg::nbiot {

/// TS 36.213 Table 16.4.1.5.1-1 (NPDSCH transport block size, bits).
/// Rows: I_TBS 0..12; columns: I_SF index 0..7 mapping to
/// {1,2,3,4,5,6,8,10} subframes.
inline constexpr std::array<std::array<std::int64_t, 8>, 13> kNpdschTbsTable{{
    {16, 32, 56, 88, 120, 152, 208, 256},
    {24, 56, 88, 144, 176, 208, 256, 344},
    {32, 72, 144, 176, 208, 256, 328, 424},
    {40, 104, 176, 208, 256, 328, 440, 568},
    {56, 120, 208, 256, 328, 408, 552, 680},
    {72, 144, 224, 328, 424, 504, 680, 872},
    {88, 176, 256, 392, 504, 600, 808, 1032},
    {104, 224, 328, 472, 584, 680, 968, 1224},
    {120, 256, 392, 536, 680, 808, 1096, 1352},
    {136, 296, 456, 616, 776, 936, 1256, 1544},
    {144, 328, 504, 680, 872, 1032, 1384, 1736},
    {176, 376, 584, 776, 1000, 1192, 1608, 2024},
    {208, 440, 680, 1000, 1128, 1352, 1800, 2280},
}};

/// Subframe counts for I_SF 0..7.
inline constexpr std::array<std::int64_t, 8> kNpdschSubframes{1, 2, 3, 4, 5, 6, 8, 10};

struct RadioConfig {
    int i_tbs = 12;  // modulation/coding row
    int i_sf = 2;    // subframe column (default: 3 subframes -> TBS 680, Rel-13 max)

    /// Per-transport-block control overhead (NPDCCH, DCI-to-data gap, HARQ
    /// spacing), repeated together with the block.
    SimTime per_block_overhead{24};

    /// NPDSCH repetition factor per CE level.
    std::array<int, 3> repetitions{1, 8, 32};

    [[nodiscard]] bool valid() const noexcept {
        return i_tbs >= 0 && i_tbs < 13 && i_sf >= 0 && i_sf < 8 &&
               per_block_overhead.count() >= 0 && repetitions[0] >= 1 &&
               repetitions[1] >= 1 && repetitions[2] >= 1;
    }

    friend bool operator==(const RadioConfig&, const RadioConfig&) = default;
};

/// Computes downlink airtime for payloads.
class RadioModel {
public:
    explicit RadioModel(RadioConfig config = {});

    [[nodiscard]] const RadioConfig& config() const noexcept { return config_; }

    /// Transport block size in bits for the configured MCS.
    [[nodiscard]] std::int64_t tbs_bits() const noexcept;

    /// Air-interface duration of one transport block at `level`.
    [[nodiscard]] SimTime block_duration(CeLevel level) const noexcept;

    /// Total downlink airtime to deliver `payload_bytes` at `level`.
    [[nodiscard]] SimTime downlink_airtime(std::int64_t payload_bytes, CeLevel level) const;

    /// Sustained downlink rate (bits per second) at `level`.
    [[nodiscard]] double effective_rate_bps(CeLevel level) const noexcept;

    /// A multicast bearer must be decodable by the weakest receiver: the
    /// bearer CE level is the maximum (deepest) level among the receivers.
    [[nodiscard]] static CeLevel multicast_bearer_level(CeLevel a, CeLevel b) noexcept {
        return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
    }

private:
    RadioConfig config_;
};

}  // namespace nbmg::nbiot
