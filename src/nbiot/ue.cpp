#include "nbiot/ue.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "telemetry/sink.hpp"

namespace nbmg::nbiot {

Ue::Ue(sim::Simulation& simulation, DeviceId device, Imsi imsi, DrxCycle cycle,
       CeLevel ce_level, const PagingSchedule& paging, const TimingModel& timing,
       RachChannel& rach, FleetAccounting& accounting, const Hooks& fleet_hooks)
    : sim_(&simulation),
      device_(device),
      imsi_(imsi),
      cycle_(cycle),
      original_cycle_(cycle),
      ce_level_(ce_level),
      paging_(&paging),
      timing_(&timing),
      rach_(&rach),
      accounting_(&accounting),
      fleet_hooks_(&fleet_hooks) {
    if (accounting.energy.size() <= device.value ||
        accounting.po_count.size() <= device.value) {
        throw std::invalid_argument("Ue: accounting has no slot for this device");
    }
}

void Ue::require_state(UeState expected, const char* operation) const {
    if (state_ != expected) {
        throw std::logic_error(std::string{"Ue::"} + operation + ": device " +
                               std::to_string(device_.value) + " is " +
                               to_string(state_) + ", expected " + to_string(expected));
    }
}

void Ue::start_monitoring(SimTime until) {
    monitor_until_ = until;
    if (materialized_) {
        schedule_next_po();
        return;
    }
    analytic_from_ = sim_->now() + SimTime{1};
    if (analytic_from_ < until) {
        // One sentinel at the horizon settles the whole analytic window,
        // so po_count()/energy() are final once the queue drains past
        // `until` — the same observable the per-occasion chain provided.
        sim_->queue().schedule_at(until, [this] { settle_pos(monitor_until_); });
    }
}

SimTime Ue::next_po_at_or_after(SimTime t) const {
    return paging_->first_po_at_or_after(t, imsi_, cycle_);
}

bool Ue::listening_at(SimTime t) const {
    if (!powered_ || state_ != UeState::idle) return false;
    return paging_->is_po(t, imsi_, cycle_);
}

void Ue::halt_monitoring() {
    if (materialized_) {
        if (po_event_) {
            sim_->queue().cancel(*po_event_);
            po_event_.reset();
        }
        materialized_ = false;
    } else {
        settle_pos(sim_->now() + SimTime{1});
    }
    // Freeze the analytic ledger: the horizon sentinel (and any later
    // settle) must not charge occasions past this instant.  power_on
    // re-opens the window at the rejoin instant.
    analytic_from_ = monitor_until_;
}

void Ue::power_off() {
    require_state(UeState::idle, "power_off");
    if (!powered_) {
        throw std::logic_error("Ue::power_off: device " +
                               std::to_string(device_.value) + " is already off");
    }
    halt_monitoring();
    powered_ = false;
}

void Ue::power_on() {
    if (powered_) {
        throw std::logic_error("Ue::power_on: device " +
                               std::to_string(device_.value) + " is already on");
    }
    powered_ = true;
    state_ = UeState::idle;
    // Any DA-SC adjustment is lost with the stored context: the device
    // re-enters the ladder at its original cycle.
    cycle_ = original_cycle_;
    // Analytic re-attach cost: one clean (collision-free) random-access
    // exchange plus the RRC setup and immediate release.  Charged directly
    // rather than through RachChannel so the shared channel's contention
    // RNG sequence is identical whether or not churn is enabled.
    accounting_->energy[device_.value].add(PowerState::rach,
                                           rach_->config().attempt_active_time());
    accounting_->energy[device_.value].add(
        PowerState::connected_signaling, timing_->rrc_setup + timing_->rrc_release);
    // Resume closed-form PO monitoring from the rejoin instant.
    analytic_from_ = sim_->now() + SimTime{1};
}

void Ue::schedule_next_po() {
    if (po_event_) {
        sim_->queue().cancel(*po_event_);
        po_event_.reset();
    }
    // Strictly after `now` so a PO that triggered the current event is not
    // scheduled twice after a cycle change.
    const SimTime next = next_po_at_or_after(sim_->now() + SimTime{1});
    if (next >= monitor_until_) return;
    next_po_time_ = next;
    po_event_ = sim_->queue().schedule_at(next, [this] { on_po(); });
}

void Ue::on_po() {
    po_event_.reset();
    ++accounting_->po_count[device_.value];
    accounting_->energy[device_.value].add(PowerState::po_monitor,
                                           timing_->po_monitor);
    schedule_next_po();
}

void Ue::settle_pos(SimTime bound) {
    if (materialized_) return;
    bound = std::min(bound, monitor_until_);
    if (bound <= analytic_from_) return;
    const std::int64_t n =
        paging_->po_count_in_range(analytic_from_, bound, imsi_, cycle_);
    if (n > 0) {
        accounting_->po_count[device_.value] += static_cast<std::uint64_t>(n);
        // Integer-millisecond uptime, so the single multiplication equals
        // n repeated adds bit for bit.
        accounting_->energy[device_.value].add(PowerState::po_monitor,
                                               timing_->po_monitor * n);
    }
    analytic_from_ = bound;
}

void Ue::materialize_pos() {
    if (materialized_) return;
    // The page that triggers materialization lands on one of this device's
    // occasions; the legacy chain's pending event at the page instant
    // fires after the page handler (it carries a higher sequence number)
    // and still counts it, so the analytic window closes just past `now`.
    settle_pos(sim_->now() + SimTime{1});
    materialized_ = true;
    schedule_next_po();
}

void Ue::dematerialize_pos() {
    if (!materialized_) return;
    materialized_ = false;
    if (po_event_) {
        sim_->queue().cancel(*po_event_);
        po_event_.reset();
        // The chain counted every occasion strictly before the pending
        // one; resume the closed form exactly there.
        analytic_from_ = next_po_time_;
    } else {
        analytic_from_ = monitor_until_;
    }
}

void Ue::apply_cycle(DrxCycle cycle) {
    if (cycle == cycle_) return;
    NBMG_TELEMETRY_EMIT(sim_->telemetry(), telemetry::EventKind::drx_transition,
                        sim_->now().count(), device_.value, cycle_.period_ms(),
                        cycle.period_ms());
    if (!materialized_) {
        // Only materialized procedures change cycles today; keep the
        // analytic ledger well-defined anyway by closing the old-cycle
        // window through the current instant.
        settle_pos(sim_->now() + SimTime{1});
        cycle_ = cycle;
        return;
    }
    cycle_ = cycle;
    schedule_next_po();
}

void Ue::start_connection(SimTime earliest, EstablishmentCause cause,
                          ConnectedFn once_connected) {
    state_ = UeState::accessing;
    last_cause_ = cause;
    rach_->request(earliest, [this, done = std::move(once_connected)](
                                 const RachOutcome& outcome) mutable {
        accounting_->energy[device_.value].add(PowerState::rach, outcome.active_time);
        rach_attempts_ += outcome.attempts;
        if (!outcome.success) {
            state_ = UeState::idle;
            NBMG_TELEMETRY_EMIT(sim_->telemetry(), telemetry::EventKind::rrc_failure,
                                sim_->now().count(), device_.value, outcome.attempts,
                                0);
            if (hooks().on_rach_failure) hooks().on_rach_failure(device_, sim_->now());
            return;
        }
        accounting_->energy[device_.value].add(PowerState::connected_signaling,
                                               timing_->rrc_setup);
        sim_->queue().schedule_after(
            timing_->rrc_setup,
            [this, done = std::move(done), attempts = outcome.attempts]() mutable {
                connected_at_ = sim_->now();
                NBMG_TELEMETRY_EMIT(sim_->telemetry(),
                                    telemetry::EventKind::rrc_connected,
                                    sim_->now().count(), device_.value, attempts,
                                    static_cast<std::int64_t>(last_cause_));
                done();
            });
    });
}

void Ue::page_normal() {
    require_state(UeState::idle, "page_normal");
    charge(PowerState::paging_rx, timing_->paging_decode);
    const SimTime ra_start = sim_->now() + timing_->paging_decode + timing_->page_to_rach;
    start_connection(ra_start, EstablishmentCause::mt_access, [this] {
        state_ = UeState::connected_waiting;
        wait_started_ = sim_->now();
        if (hooks().on_connected) hooks().on_connected(device_, sim_->now());
    });
}

void Ue::page_mltc(SimTime wake_at) {
    require_state(UeState::idle, "page_mltc");
    if (wake_at < sim_->now()) {
        throw std::logic_error("Ue::page_mltc: wake time in the past");
    }
    charge(PowerState::paging_rx,
           timing_->paging_decode + timing_->mltc_extension_extra);
    // The device does not connect now: it sets T322 and goes back to sleep.
    sim_->queue().schedule_at(wake_at, [this] {
        // Skip when already serving another procedure — or off-air (churn):
        // a departed device loses its T322 context with the rest of its
        // stored configuration.
        if (!powered_ || state_ != UeState::idle) return;
        start_connection(sim_->now() + timing_->page_to_rach,
                         EstablishmentCause::multicast_reception, [this] {
                             state_ = UeState::connected_waiting;
                             wait_started_ = sim_->now();
                             if (hooks().on_connected) hooks().on_connected(device_, sim_->now());
                         });
    });
}

void Ue::page_for_reconfig(DrxCycle new_cycle) {
    require_state(UeState::idle, "page_for_reconfig");
    // The one procedure whose event ordering against a concurrent cycle
    // change matters: run per-occasion events until the cycle is restored.
    materialize_pos();
    charge(PowerState::paging_rx, timing_->paging_decode);
    const SimTime ra_start = sim_->now() + timing_->paging_decode + timing_->page_to_rach;
    start_connection(ra_start, EstablishmentCause::mt_access, [this, new_cycle] {
        // RRC Connection Reconfiguration (new DRX) followed by an immediate
        // RRC Connection Release: the eNB does not let the inactivity timer
        // run (Sec. III-B).
        charge(PowerState::connected_signaling,
               timing_->rrc_reconfiguration + timing_->rrc_release);
        sim_->queue().schedule_after(
            timing_->rrc_reconfiguration + timing_->rrc_release, [this, new_cycle] {
                state_ = UeState::idle;
                released_at_ = sim_->now();
                NBMG_TELEMETRY_EMIT(sim_->telemetry(),
                                    telemetry::EventKind::rrc_released,
                                    sim_->now().count(), device_.value, 0, 0);
                apply_cycle(new_cycle);
                if (hooks().on_released) hooks().on_released(device_, sim_->now());
            });
    });
}

void Ue::begin_reception(SimTime data_end, SimTime tail) {
    require_state(UeState::connected_waiting, "begin_reception");
    if (data_end < sim_->now()) {
        throw std::logic_error("Ue::begin_reception: end time in the past");
    }
    charge(PowerState::connected_wait, sim_->now() - wait_started_);
    state_ = UeState::receiving;
    const SimTime rx_duration = data_end - sim_->now();
    sim_->queue().schedule_at(data_end, [this, rx_duration, tail] {
        charge(PowerState::connected_rx, rx_duration);
        payload_received_ = true;
        if (tail > SimTime{0}) charge(PowerState::connected_wait, tail);
        SimTime signaling = timing_->rrc_release;
        const bool restore = cycle_ != original_cycle_;
        if (restore) signaling += timing_->rrc_reconfiguration;
        charge(PowerState::connected_signaling, signaling);
        sim_->queue().schedule_after(tail + signaling, [this, restore] {
            state_ = UeState::idle;
            released_at_ = sim_->now();
            NBMG_TELEMETRY_EMIT(sim_->telemetry(), telemetry::EventKind::rrc_released,
                                sim_->now().count(), device_.value, 0, 0);
            if (restore) apply_cycle(original_cycle_);
            // The adjustment window is over (or never mattered): drop back
            // to closed-form occasion accounting.
            dematerialize_pos();
            if (hooks().on_released) hooks().on_released(device_, sim_->now());
        });
    });
}

void Ue::receive_idle_broadcast(SimTime data_end) {
    require_state(UeState::idle, "receive_idle_broadcast");
    if (data_end < sim_->now()) {
        throw std::logic_error("Ue::receive_idle_broadcast: end time in the past");
    }
    state_ = UeState::receiving;
    const SimTime rx_duration = data_end - sim_->now();
    sim_->queue().schedule_at(data_end, [this, rx_duration] {
        charge(PowerState::connected_rx, rx_duration);
        payload_received_ = true;
        state_ = UeState::idle;
        released_at_ = sim_->now();
        NBMG_TELEMETRY_EMIT(sim_->telemetry(), telemetry::EventKind::rrc_released,
                            sim_->now().count(), device_.value, 0, 0);
        if (hooks().on_released) hooks().on_released(device_, sim_->now());
    });
}

void Ue::release_without_reception() {
    require_state(UeState::connected_waiting, "release_without_reception");
    charge(PowerState::connected_wait, sim_->now() - wait_started_);
    charge(PowerState::connected_signaling, timing_->rrc_release);
    sim_->queue().schedule_after(timing_->rrc_release, [this] {
        state_ = UeState::idle;
        released_at_ = sim_->now();
        NBMG_TELEMETRY_EMIT(sim_->telemetry(), telemetry::EventKind::rrc_released,
                            sim_->now().count(), device_.value, 0, 0);
        if (hooks().on_released) hooks().on_released(device_, sim_->now());
    });
}

}  // namespace nbmg::nbiot
