// RRC procedure model: message types, establishment causes, and the
// signaling-latency constants the uptime accounting uses.
//
// The DR-SI mechanism adds a new establishment cause (multicastReception)
// and a new UE timer (T322) on top of the standard procedures; both are
// modelled here so the campaign runner can distinguish standard-compliant
// from extended behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "nbiot/drx.hpp"
#include "nbiot/types.hpp"

namespace nbmg::nbiot {

/// RRCConnectionRequest establishment cause.  `multicast_reception` is the
/// paper's (non-standard) extension used by DR-SI.
enum class EstablishmentCause : std::uint8_t {
    mo_signalling,
    mo_data,
    mt_access,
    multicast_reception,  // DR-SI extension; not in TS 36.331
};

[[nodiscard]] constexpr const char* to_string(EstablishmentCause cause) noexcept {
    switch (cause) {
        case EstablishmentCause::mo_signalling: return "mo-Signalling";
        case EstablishmentCause::mo_data: return "mo-Data";
        case EstablishmentCause::mt_access: return "mt-Access";
        case EstablishmentCause::multicast_reception: return "multicastReception";
    }
    return "?";
}

/// True when the cause exists in TS 36.331 (standards compliance checks).
[[nodiscard]] constexpr bool is_standard_cause(EstablishmentCause cause) noexcept {
    return cause != EstablishmentCause::multicast_reception;
}

struct RrcConnectionRequest {
    Imsi imsi;
    EstablishmentCause cause = EstablishmentCause::mt_access;
};

struct RrcConnectionSetup {};

/// Carries the DRX reconfiguration used by DA-SC.
struct RrcConnectionReconfiguration {
    std::optional<DrxCycle> new_drx;
};

struct RrcConnectionRelease {};

using RrcMessage = std::variant<RrcConnectionRequest, RrcConnectionSetup,
                                RrcConnectionReconfiguration, RrcConnectionRelease>;

/// Time constants of the protocol actions a device performs.  All values
/// are configurable; defaults are representative of commercial NB-IoT
/// deployments and of the constants used in the paper's own references.
struct TimingModel {
    SimTime po_monitor{15};          // wake + NPDCCH monitoring at one PO
    SimTime paging_decode{25};       // NPDSCH paging message reception
    SimTime mltc_extension_extra{8}; // extra decode time for the DR-SI extension
    SimTime page_to_rach{10};        // processing gap between page and msg1
    SimTime rrc_setup{250};          // msg4 -> setupComplete + security (NB-IoT
                                     // control plane is slow: ~1.5 s RA-to-ready)
    SimTime rrc_reconfiguration{120};  // reconfiguration + complete
    SimTime rrc_release{50};           // release + ack

    [[nodiscard]] bool valid() const noexcept {
        return po_monitor.count() > 0 && paging_decode.count() >= 0 &&
               mltc_extension_extra.count() >= 0 && page_to_rach.count() >= 0 &&
               rrc_setup.count() >= 0 && rrc_reconfiguration.count() >= 0 &&
               rrc_release.count() >= 0;
    }

    friend bool operator==(const TimingModel&, const TimingModel&) = default;
};

/// Approximate over-the-air message sizes (bytes) for the secondary
/// bandwidth metric (bytes on air).  Values follow typical NB-IoT SRB
/// message sizes.
struct SignalingSizes {
    std::int64_t paging_message_base = 20;
    std::int64_t paging_record = 8;        // one PagingRecordList entry
    std::int64_t mltc_extension_entry = 12;  // id + time-to-multicast
    std::int64_t rach_exchange = 56;       // msg1..msg4
    std::int64_t rrc_setup_exchange = 120;
    std::int64_t rrc_reconfiguration = 40;
    std::int64_t rrc_release = 16;

    friend bool operator==(const SignalingSizes&, const SignalingSizes&) = default;
};

}  // namespace nbmg::nbiot
