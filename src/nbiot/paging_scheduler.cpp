#include "nbiot/paging_scheduler.hpp"

#include <stdexcept>

#include "telemetry/sink.hpp"

namespace nbmg::nbiot {

PagingScheduler::PagingScheduler(const PagingSchedule& schedule, int max_page_records)
    : schedule_(&schedule), max_records_(max_page_records) {
    if (max_page_records <= 0) {
        throw std::invalid_argument("PagingScheduler: max_page_records must be positive");
    }
}

std::optional<SimTime> PagingScheduler::find_slot(Imsi imsi, DrxCycle cycle,
                                                  SimTime not_before,
                                                  SimTime deadline) const {
    SimTime po = schedule_->first_po_at_or_after(not_before, imsi, cycle);
    while (po < deadline) {
        const auto it = by_time_.find(po);
        if (it == by_time_.end() ||
            it->second.occupancy() < static_cast<std::size_t>(max_records_)) {
            return po;
        }
        po += cycle.period();
    }
    return std::nullopt;
}

std::optional<SimTime> PagingScheduler::enqueue_record(DeviceId device, Imsi imsi,
                                                       DrxCycle cycle, SimTime not_before,
                                                       SimTime deadline) {
    const auto slot = find_slot(imsi, cycle, not_before, deadline);
    if (!slot) return std::nullopt;
    auto& msg = by_time_[*slot];
    msg.at = *slot;
    msg.records.push_back(PagingRecord{device, imsi});
    ++total_entries_;
    NBMG_TELEMETRY_EMIT(telemetry_, telemetry::EventKind::page_scheduled,
                        slot->count(), device.value,
                        static_cast<std::int64_t>(msg.occupancy()), 0);
    return slot;
}

std::optional<SimTime> PagingScheduler::enqueue_mltc(DeviceId device, Imsi imsi,
                                                     DrxCycle cycle, SimTime not_before,
                                                     SimTime deadline,
                                                     SimTime multicast_at) {
    const auto slot = find_slot(imsi, cycle, not_before, deadline);
    if (!slot) return std::nullopt;
    auto& msg = by_time_[*slot];
    msg.at = *slot;
    msg.mltc_extensions.push_back(MltcExtension{device, imsi, multicast_at});
    ++total_entries_;
    NBMG_TELEMETRY_EMIT(telemetry_, telemetry::EventKind::page_scheduled,
                        slot->count(), device.value,
                        static_cast<std::int64_t>(msg.occupancy()), 1);
    return slot;
}

bool PagingScheduler::try_enqueue_record_at(DeviceId device, Imsi imsi, DrxCycle cycle,
                                            SimTime po) {
    if (!schedule_->is_po(po, imsi, cycle)) {
        throw std::logic_error("PagingScheduler: not a paging occasion of the device");
    }
    return force_enqueue_record_at(device, imsi, po);
}

bool PagingScheduler::force_enqueue_record_at(DeviceId device, Imsi imsi, SimTime po) {
    auto& msg = by_time_[po];
    if (msg.occupancy() >= static_cast<std::size_t>(max_records_)) {
        return false;
    }
    msg.at = po;
    msg.records.push_back(PagingRecord{device, imsi});
    ++total_entries_;
    NBMG_TELEMETRY_EMIT(telemetry_, telemetry::EventKind::page_scheduled, po.count(),
                        device.value, static_cast<std::int64_t>(msg.occupancy()), 0);
    return true;
}

std::vector<PagingMessage> PagingScheduler::messages() const {
    std::vector<PagingMessage> out;
    out.reserve(by_time_.size());
    for (const auto& [at, msg] : by_time_) {
        if (msg.occupancy() > 0) out.push_back(msg);
    }
    return out;
}

}  // namespace nbmg::nbiot
